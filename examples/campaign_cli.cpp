// campaign_cli.cpp — Declarative experiment campaigns from the command line.
//
// Runs a campaign file (one sweepable key=value spec per line, see
// engine/spec.hpp) or one of the builtin campaigns that replay the paper's
// figure sweeps, sharded over a work-stealing thread pool, and emits one
// deterministic CSV row per job.  The CSV is byte-identical regardless of
// --threads, so campaign outputs can be diffed across machines.
//
// Every axis is registry-driven (core/scenario.hpp): the --list-* flags
// enumerate whatever schemes, patterns, topology presets and builtin
// campaigns are registered, and a newly registered name is immediately
// usable in campaign files with no CLI change.
//
//   campaign_cli --builtin fig5-cg --threads 8 --out fig5.csv
//   campaign_cli --builtin fig2-cg --seeds 3 --msg-scale 0.03125
//   campaign_cli --list-schemes
//   campaign_cli my_campaign.txt
//   echo 'pattern=ring:64 w2=8..1 routing=Random seed=1..4' | campaign_cli -
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/timeseries.hpp"
#include "core/scenario.hpp"
#include "engine/campaigns.hpp"
#include "engine/manifest.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"
#include "fault/plan.hpp"
#include "obs/chrome_trace.hpp"

namespace {

struct CliOptions {
  std::string campaignFile;
  std::string builtin;
  std::string outFile;
  std::string list;           // One of: schemes, patterns, sources, faults,
                              // topologies, campaigns ("" = no listing).
  std::uint32_t threads = 0;     // 0 = hardware concurrency.
  std::uint32_t simThreads = 0;  // 0 = pool idle share per job.
  std::uint32_t seeds = 10;
  double msgScale = 0.125;
  bool contention = true;
  bool printCampaign = false;
  bool quiet = false;
  bool telemetry = false;     // --telemetry[=DIR]: summary floor + manifest.
  std::string telemetryDir;   // Non-empty: manifest + per-job series there.
  std::string traceOut;       // --trace-out FILE: combined Chrome trace.
};

std::string joinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " | ";
    out += n;
  }
  return out;
}

void usage(std::ostream& os) {
  os << "usage: campaign_cli [options] [campaign-file|-]\n"
        "  --builtin NAME    "
     << joinNames(*engine::campaignRegistry().names())
     << "\n"
        "  --threads N       worker threads (default: hardware concurrency)\n"
        "  --sim-threads N   shard workers inside each job's event core\n"
        "                    (sim/shard.hpp).  --threads splits the campaign\n"
        "                    across jobs; --sim-threads splits one job's\n"
        "                    simulation.  Default: each job gets the pool's\n"
        "                    idle share (threads / concurrent jobs), so a\n"
        "                    one-job campaign shards across the whole pool\n"
        "                    and a saturated pool runs each core serially.\n"
        "                    A spec's own sim_threads= key overrides this\n"
        "                    per job.  Results are byte-identical for any\n"
        "                    value; the engine falls back to the serial core\n"
        "                    when sharding cannot help (closed-loop jobs,\n"
        "                    fault plans, telemetry probes, small topos).\n"
        "  --seeds N         seed-sweep width of builtin campaigns "
        "(default 10)\n"
        "  --msg-scale X     message-size scale of builtin campaigns "
        "(default 0.125)\n"
        "  --out FILE        write the CSV there instead of stdout\n"
        "  --telemetry[=DIR] record per-job telemetry; writes a run manifest\n"
        "                    (JSON) next to --out, or manifest + per-job\n"
        "                    occupancy time-series CSVs into DIR\n"
        "  --trace-out FILE  write a combined Chrome trace (implies event\n"
        "                    recording; open at ui.perfetto.dev)\n"
        "  --no-contention   skip the static contention/census columns\n"
        "  --print-campaign  print the expanded campaign text and exit\n"
        "  --list-schemes    registered routing schemes, one per line\n"
        "  --list-patterns   registered workload patterns\n"
        "  --list-sources    registered open-loop traffic sources "
        "(source=/load= keys)\n"
        "  --list-faults     registered fault-plan models (faults= key)\n"
        "  --list-topologies registered topology presets\n"
        "  --list-campaigns  registered builtin campaigns\n"
        "  --quiet           no progress on stderr\n";
}

/// Renders one "name - summary" listing from whichever registry @p what
/// names; returns the process exit code.
int listRegistry(const std::string& what) {
  const auto row = [](const std::string& name, const std::string& usage,
                      const std::string& summary) {
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 22; ++pad) std::cout << ' ';
    std::cout << summary;
    if (!usage.empty() && usage != name) std::cout << "  [" << usage << "]";
    std::cout << "\n";
  };
  if (what == "schemes") {
    std::cout << "registered routing schemes:\n";
    const auto names = core::schemeRegistry().names();
    for (const std::string& name : *names) {
      row(name, name, core::schemeRegistry().at(name).summary);
    }
  } else if (what == "patterns") {
    std::cout << "registered patterns:\n";
    const auto names = core::patternRegistry().names();
    for (const std::string& name : *names) {
      const core::PatternInfo& info = core::patternRegistry().at(name);
      row(name, info.usage, info.summary);
    }
  } else if (what == "sources") {
    std::cout << "registered open-loop traffic sources (use with source= "
                 "and load=):\n";
    const auto names = core::sourceRegistry().names();
    for (const std::string& name : *names) {
      const core::SourceInfo& info = core::sourceRegistry().at(name);
      row(name, info.usage, info.summary);
    }
  } else if (what == "faults") {
    std::cout << "registered fault-plan models (use with faults=):\n";
    const auto names = fault::planRegistry().names();
    for (const std::string& name : *names) {
      const fault::PlanInfo& info = fault::planRegistry().at(name);
      row(name, info.usage, info.summary);
    }
  } else if (what == "topologies") {
    std::cout << "registered topology presets (or explicit "
                 "topo=\"XGFT(h; m...; w...)\"):\n";
    const auto names = core::topologyRegistry().names();
    for (const std::string& name : *names) {
      const core::TopologyInfo& info = core::topologyRegistry().at(name);
      row(name, info.usage, info.summary);
    }
  } else if (what == "campaigns") {
    std::cout << "registered builtin campaigns:\n";
    const auto names = engine::campaignRegistry().names();
    for (const std::string& name : *names) {
      row(name, name, engine::campaignRegistry().at(name).summary);
    }
  } else {
    std::cerr << "error: unknown listing '" << what << "'\n";
    return 2;
  }
  return 0;
}

CliOptions parseCli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(what) + " wants a value");
      }
      return argv[++i];
    };
    if (arg == "--builtin") {
      opt.builtin = next("--builtin");
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::uint32_t>(std::stoul(next("--threads")));
    } else if (arg == "--sim-threads") {
      opt.simThreads =
          static_cast<std::uint32_t>(std::stoul(next("--sim-threads")));
    } else if (arg == "--seeds") {
      opt.seeds = static_cast<std::uint32_t>(std::stoul(next("--seeds")));
    } else if (arg == "--msg-scale") {
      opt.msgScale = std::stod(next("--msg-scale"));
    } else if (arg == "--out") {
      opt.outFile = next("--out");
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      opt.telemetry = true;
      opt.telemetryDir = arg.substr(std::string("--telemetry=").size());
      if (opt.telemetryDir.empty()) {
        throw std::invalid_argument("--telemetry= wants a directory");
      }
    } else if (arg == "--trace-out") {
      opt.traceOut = next("--trace-out");
    } else if (arg == "--no-contention") {
      opt.contention = false;
    } else if (arg == "--print-campaign") {
      opt.printCampaign = true;
    } else if (arg == "--list-schemes") {
      opt.list = "schemes";
    } else if (arg == "--list-patterns") {
      opt.list = "patterns";
    } else if (arg == "--list-sources") {
      opt.list = "sources";
    } else if (arg == "--list-faults") {
      opt.list = "faults";
    } else if (arg == "--list-topologies") {
      opt.list = "topologies";
    } else if (arg == "--list-campaigns") {
      opt.list = "campaigns";
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw std::invalid_argument("unknown flag '" + arg + "' (see --help)");
    } else if (opt.campaignFile.empty()) {
      opt.campaignFile = arg;
    } else {
      throw std::invalid_argument("more than one campaign file given");
    }
  }
  if (opt.list.empty() && opt.builtin.empty() == opt.campaignFile.empty()) {
    throw std::invalid_argument(
        "give exactly one of --builtin NAME or a campaign file (or '-')");
  }
  if (opt.telemetry && opt.telemetryDir.empty() && opt.outFile.empty()) {
    throw std::invalid_argument(
        "--telemetry without a DIR needs --out FILE (the manifest is "
        "written next to it); use --telemetry=DIR otherwise");
  }
  return opt;
}

/// Write-then-rename (an error mid-write must not leave a truncated file
/// under the requested name), shared by every CLI output artifact.
void writeFileAtomic(const std::string& path,
                     const std::function<void(std::ostream&)>& fill) {
  const std::string tmpFile = path + ".tmp";
  try {
    std::ofstream out(tmpFile, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("cannot write: " + tmpFile);
    }
    fill(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("write failed: " + tmpFile);
    }
    out.close();
    if (std::rename(tmpFile.c_str(), path.c_str()) != 0) {
      throw std::runtime_error("cannot rename " + tmpFile + " to " + path);
    }
  } catch (...) {
    std::remove(tmpFile.c_str());  // Every failure path: no .tmp litter.
    throw;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    cli = parseCli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }
  try {
    if (!cli.list.empty()) return listRegistry(cli.list);

    std::string campaignText;
    if (!cli.builtin.empty()) {
      campaignText = engine::builtinCampaign(
          cli.builtin, engine::CampaignOptions{cli.seeds, cli.msgScale});
    } else if (cli.campaignFile == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      campaignText = buf.str();
    } else {
      std::ifstream file(cli.campaignFile);
      if (!file) {
        throw std::invalid_argument("cannot open campaign file: " +
                                    cli.campaignFile);
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      campaignText = buf.str();
    }
    if (cli.printCampaign) {
      std::cout << campaignText;
      return 0;
    }

    const std::vector<engine::ExperimentSpec> specs =
        engine::parseCampaign(campaignText);
    if (specs.empty()) {
      throw std::invalid_argument("campaign expanded to zero jobs");
    }
    // Defensive pre-flight: parseCampaign already resolves these names, so
    // today this loop cannot fire — it exists to pin the contract that a
    // registry lookup can never fail mid-campaign (uniform "unknown <kind>
    // '<name>' (registered: ...)" error, non-zero exit, output file never
    // created) even if parse-time validation and job-time lookups drift
    // apart in a future refactor.
    for (const engine::ExperimentSpec& spec : specs) {
      (void)core::schemeRegistry().at(spec.routing);
      (void)core::patternRegistry().at(core::splitSpec(spec.pattern).name);
      if (!spec.source.empty()) {
        (void)core::sourceRegistry().at(core::splitSpec(spec.source).name);
      }
    }

    engine::RunnerOptions ropt;
    ropt.threads = cli.threads;
    ropt.simThreads = cli.simThreads;
    ropt.collectContention = cli.contention;
    // Telemetry floors: --trace-out needs the event log, --telemetry the
    // summary series; a spec's own telemetry= key can only raise a job
    // further, never below the floor.
    if (!cli.traceOut.empty()) {
      ropt.telemetry = engine::TelemetryLevel::kTrace;
    } else if (cli.telemetry) {
      ropt.telemetry = engine::TelemetryLevel::kSummary;
    }
    // One progress line per completed job, rate-limited so huge sweeps of
    // tiny jobs don't flood the terminal; failures and the final job always
    // print.  Suppressed when stderr is piped (logs stay clean) or --quiet.
    std::size_t done = 0;
    const bool progress = !cli.quiet && isatty(fileno(stderr)) != 0;
    if (progress) {
      auto lastPrint = std::chrono::steady_clock::time_point{};
      ropt.onJobDone = [&, lastPrint](const engine::JobResult& job) mutable {
        ++done;
        const auto now = std::chrono::steady_clock::now();
        const bool due =
            now - lastPrint >= std::chrono::milliseconds(100) || !job.ok ||
            done == specs.size();
        if (!due) return;
        lastPrint = now;
        std::cerr << "[" << done << "/" << specs.size() << "] "
                  << job.spec.toLine() << (job.ok ? " ... " : " FAILED ... ")
                  << job.wallNs / 1000000 << " ms\n";
      };
    }
    engine::Runner runner(ropt);
    const engine::CampaignResults results = runner.run(specs);

    if (cli.outFile.empty()) {
      results.writeCsv(std::cout);
    } else {
      writeFileAtomic(cli.outFile,
                      [&](std::ostream& os) { results.writeCsv(os); });
    }

    if (cli.telemetry) {
      std::string manifestPath = cli.outFile + ".manifest.json";
      if (!cli.telemetryDir.empty()) {
        std::filesystem::create_directories(cli.telemetryDir);
        manifestPath = cli.telemetryDir + "/manifest.json";
        for (const engine::JobResult& job : results.jobs) {
          if (!job.telemetry) continue;
          const std::string seriesPath = cli.telemetryDir + "/job" +
                                         std::to_string(job.jobIndex) +
                                         ".timeseries.csv";
          writeFileAtomic(seriesPath, [&](std::ostream& os) {
            analysis::writeTimeSeriesCsv(os, job.telemetry->series());
          });
        }
      }
      writeFileAtomic(manifestPath, [&](std::ostream& os) {
        engine::writeManifest(os, results);
      });
    }

    if (!cli.traceOut.empty()) {
      writeFileAtomic(cli.traceOut, [&](std::ostream& os) {
        obs::ChromeTraceWriter writer(os);
        for (const engine::JobResult& job : results.jobs) {
          if (!job.telemetry) continue;
          obs::ChromeTraceOptions topt;
          topt.pid = job.jobIndex + 1;
          topt.processName = job.spec.toLine();
          writer.addProcess(*job.telemetry, topt);
        }
        writer.finish();
      });
    }

    std::size_t failed = 0;
    for (const engine::JobResult& job : results.jobs) {
      if (!job.ok) ++failed;
    }
    if (!cli.quiet) {
      const engine::CacheStats& c = results.cache;
      std::cerr << specs.size() << " jobs on " << results.threadsUsed
                << " thread(s) in "
                << static_cast<double>(results.wallTimeNs) / 1e9
                << " s; cache: topo " << c.topologyHits << "/"
                << (c.topologyHits + c.topologyMisses) << " hits, routers "
                << c.routerHits << "/" << (c.routerHits + c.routerMisses)
                << ", tables " << c.tableHits << "/"
                << (c.tableHits + c.tableMisses) << ", references "
                << c.referenceHits << "/"
                << (c.referenceHits + c.referenceMisses) << "\n";
      if (failed > 0) std::cerr << failed << " job(s) failed\n";
    }
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
