// slimming_study.cpp — How much network can you remove?
//
// The practical question behind the paper (Sec. I–II): full-bisection fat
// trees are over-provisioned for real workloads, so how far can the upper
// level be slimmed before an application actually slows down — and how much
// does the answer depend on the routing scheme?
//
// This example sweeps w2 for a workload of your choice and prints, for each
// routing scheme, the smallest network that stays within 25% of the full
// tree's performance — the "buy this many switches" answer.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
  // Small instance so the example runs in seconds: 64 hosts, 8 switches.
  const std::uint32_t m = 8;
  const double scale = argc > 1 ? std::stod(argv[1]) : 1.0;
  patterns::PhasedPattern app = trace::scaleMessages(
      patterns::wrfHalo(8, 8, static_cast<patterns::Bytes>(64 * 1024)),
      scale);
  std::cout << "workload: " << app.name << "\n\n";

  const sim::SimConfig cfg;
  const double reference =
      static_cast<double>(trace::runCrossbarReference(app, cfg).makespanNs);

  std::map<std::string, std::vector<double>> slowdowns;
  std::vector<std::string> names;
  for (std::uint32_t w2 = m; w2 >= 1; --w2) {
    const xgft::Topology topo(xgft::xgft2(m, m, w2));
    std::vector<std::pair<std::string, routing::RouterPtr>> routers;
    routers.emplace_back("Random", routing::makeRandom(topo, 1));
    routers.emplace_back("d-mod-k", routing::makeDModK(topo));
    routers.emplace_back("r-NCA-d", routing::makeRNcaDown(topo, 1));
    routers.emplace_back("colored", routing::makeColored(topo, app));
    for (auto& [name, router] : routers) {
      const double t = static_cast<double>(
          trace::runApp(topo, *router, app, cfg).makespanNs);
      slowdowns[name].push_back(t / reference);
      if (w2 == m) names.push_back(name);
    }
  }

  analysis::Table table([&] {
    std::vector<std::string> header{"w2", "switches"};
    header.insert(header.end(), names.begin(), names.end());
    return header;
  }());
  for (std::uint32_t i = 0; i < m; ++i) {
    std::vector<std::string> row{std::to_string(m - i),
                                 std::to_string(m + (m - i))};
    for (const std::string& name : names) {
      row.push_back(analysis::Table::num(slowdowns[name][i]));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nsmallest tree within 25% of the full tree:\n";
  for (const std::string& name : names) {
    const double budget = slowdowns[name][0] * 1.25;
    std::uint32_t smallest = m;
    for (std::uint32_t i = 0; i < m; ++i) {
      if (slowdowns[name][i] > budget) break;  // Slimming stops paying off.
      smallest = m - i;
    }
    std::cout << "  " << name << ": w2 = " << smallest << " ("
              << m + smallest << " switches instead of " << 2 * m << ")\n";
  }
  return 0;
}
