// custom_topology.cpp — Beyond k-ary n-trees: routing an irregular XGFT.
//
// The paper's proposal is defined for the *whole* XGFT family, not just
// k-ary n-trees (that generality is its headline contribution).  This
// example builds a three-level tree with different arities and parent
// counts per level — XGFT(3; 6,4,3; 1,3,2) — inspects its structure, shows
// a custom RelabelScheme (a user-defined member of the paper's class of
// algorithms), and compares routing schemes on a random permutation.
#include <iostream>

#include "analysis/contention.hpp"
#include "analysis/report.hpp"
#include "patterns/permutation.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "xgft/printer.hpp"

int main() {
  const xgft::Topology topo(xgft::Params({6, 4, 3}, {1, 3, 2}));
  xgft::printLevelTable(topo, std::cout);
  std::cout << "\n";

  // A pair's NCA options depend on where their labels diverge.
  const xgft::NodeIndex s = 1;
  for (const xgft::NodeIndex d : {2u, 10u, 50u}) {
    std::cout << "pair (" << s << " -> " << d << "): NCA level "
              << topo.ncaLevel(s, d) << ", " << topo.numNcas(s, d)
              << " candidate ancestor(s)\n";
  }
  std::cout << "\n";

  // A custom member of the paper's algorithm class: reverse-mod maps,
  // built with fromTables (DigitMap(v) = (m - 1 - v) mod w).
  const xgft::Params& p = topo.params();
  std::vector<std::vector<std::uint32_t>> tables(p.height());
  for (std::uint32_t l = 0; l < p.height(); ++l) {
    const std::uint32_t pos = routing::RelabelScheme::digitPosition(l);
    const std::uint32_t digits = p.m(pos);
    const std::uint32_t ports = p.w(l + 1);
    std::uint64_t contexts = 1;
    for (std::uint32_t j = pos + 1; j <= p.height(); ++j) contexts *= p.m(j);
    tables[l].resize(contexts * digits);
    for (std::uint64_t c = 0; c < contexts; ++c) {
      for (std::uint32_t v = 0; v < digits; ++v) {
        tables[l][c * digits + v] = (digits - 1 - v) % ports;
      }
    }
  }
  const routing::RelabelRouter reverseMod(
      topo, routing::RelabelScheme::fromTables(topo, tables),
      routing::Guide::Destination, "reverse-mod-d");

  // Compare everything on a random permutation.
  const patterns::Pattern perm =
      patterns::randomPermutation(
          static_cast<patterns::Rank>(topo.numHosts()), 5)
          .toPattern(32 * 1024);
  patterns::PhasedPattern app;
  app.name = "random permutation";
  app.numRanks = static_cast<patterns::Rank>(topo.numHosts());
  app.phases.push_back(perm);

  const routing::ColoredRouter colored(topo, app);
  analysis::Table table({"scheme", "max flows/link", "slowdown"});
  const auto addRow = [&](const routing::Router& r) {
    table.addRow({r.name(),
                  std::to_string(analysis::computeLoads(topo, perm, r)
                                     .maxFlowsPerChannel),
                  analysis::Table::num(
                      trace::slowdownVsCrossbar(topo, r, app), 2)});
  };
  addRow(*routing::makeRandom(topo, 1));
  addRow(*routing::makeSModK(topo));
  addRow(*routing::makeDModK(topo));
  addRow(reverseMod);
  addRow(*routing::makeRNcaUp(topo, 1));
  addRow(*routing::makeRNcaDown(topo, 1));
  addRow(colored);
  table.print(std::cout);
  return 0;
}
