// ablation_buffers — Sensitivity of the headline result to the switch
// buffer provisioning (input/output buffer depth in segments).
//
// DESIGN.md claims the evaluation is bandwidth-contention dominated, so
// slowdown ratios should be robust to the buffer depth (which mainly moves
// absolute latency, not steady-state throughput).  This bench re-measures
// the Fig. 2(b) w2=10 point under buffer depths 1..16 to substantiate that.
#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  const xgft::Topology topo(xgft::xgft2(16, 16, 10));
  const auto cg = trace::scaleMessages(patterns::cgD128(), opt.msgScale);
  std::cout << "== Ablation: buffer depth, CG.D-128 on "
            << topo.params().toString() << " ==\n"
            << "msg-scale=" << opt.msgScale << "\n\n";
  analysis::Table table({"buffers(seg)", "d-mod-k", "Random", "max inQ",
                         "max outQ"});
  for (const std::uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
    sim::SimConfig cfg;
    cfg.inputBufferSegments = depth;
    cfg.outputBufferSegments = depth;
    const double reference = static_cast<double>(
        trace::runCrossbarReference(cg, cfg).makespanNs);
    const trace::RunResult dmodk =
        trace::runApp(topo, *routing::makeDModK(topo), cg, cfg);
    const trace::RunResult random =
        trace::runApp(topo, *routing::makeRandom(topo, 1), cg, cfg);
    table.addRow(
        {std::to_string(depth),
         analysis::Table::num(static_cast<double>(dmodk.makespanNs) /
                              reference),
         analysis::Table::num(static_cast<double>(random.makespanNs) /
                              reference),
         std::to_string(dmodk.stats.maxInputQueueDepth),
         std::to_string(dmodk.stats.maxOutputQueueDepth)});
    std::cerr << "  depth=" << depth << " done\n";
  }
  table.print(std::cout);
  return 0;
}
