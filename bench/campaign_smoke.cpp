// campaign_smoke — Serial vs. multi-threaded campaign engine wall-time on a
// small sweep, emitted as JSON for trajectory tracking (BENCH_*.json).
//
// The workload is a 64-job sweep over small topologies and cheap synthetic
// patterns, so the whole bench stays in the seconds range.  Each
// configuration runs with 1 worker thread and with all hardware threads
// (fresh caches both times, so the comparison is fair), and the bench
// verifies the engine's determinism contract on the way: both runs must
// produce byte-identical CSV.
//
//   campaign_smoke [--threads N] [--jobs N] [--json]
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>

#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace {

std::vector<engine::ExperimentSpec> smokeCampaign(std::uint32_t jobs) {
  // ring/stencil/permutations over two small trees, seeds as the fastest
  // axis; truncated/extended to exactly `jobs` entries.
  const std::string lines =
      "pattern={ring:64,stencil:8:8,permutations:64:2} m1=8 m2=8 w2={8,4} "
      "routing={d-mod-k,Random,r-NCA-d,adaptive} seed=1..8\n";
  std::vector<engine::ExperimentSpec> all = engine::parseCampaign(lines);
  std::vector<engine::ExperimentSpec> out;
  out.reserve(jobs);
  for (std::uint32_t i = 0; i < jobs; ++i) {
    engine::ExperimentSpec spec = all[i % all.size()];
    spec.seed += 8 * (i / static_cast<std::uint32_t>(all.size()));
    out.push_back(std::move(spec));
  }
  return out;
}

double runOnce(const std::vector<engine::ExperimentSpec>& specs,
               std::uint32_t threads, std::string* csv) {
  engine::RunnerOptions opt;
  opt.threads = threads;
  opt.collectContention = false;
  engine::Runner runner(opt);  // Fresh runner: cold caches for a fair race.
  const engine::CampaignResults results = runner.run(specs);
  for (const engine::JobResult& job : results.jobs) {
    if (!job.ok) {
      throw std::runtime_error("smoke job failed: " + job.error);
    }
  }
  if (csv) *csv = results.toCsv();
  return static_cast<double>(results.wallTimeNs) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::uint32_t jobs = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--json") {
      // JSON is the only output format; flag kept for interface symmetry.
    } else {
      std::cerr << "usage: campaign_smoke [--threads N] [--jobs N]\n";
      return 2;
    }
  }
  try {
    const std::vector<engine::ExperimentSpec> specs = smokeCampaign(jobs);
    std::string serialCsv;
    std::string parallelCsv;
    const double serialS = runOnce(specs, 1, &serialCsv);
    const double parallelS = runOnce(specs, threads, &parallelCsv);
    const bool identical = serialCsv == parallelCsv;
    std::cout << "{\n"
              << "  \"name\": \"campaign_smoke\",\n"
              << "  \"jobs\": " << specs.size() << ",\n"
              << "  \"threads\": " << threads << ",\n"
              << "  \"serial_s\": " << engine::formatFixed(serialS, 6) << ",\n"
              << "  \"parallel_s\": " << engine::formatFixed(parallelS, 6)
              << ",\n"
              << "  \"speedup\": "
              << engine::formatFixed(
                     parallelS > 0 ? serialS / parallelS : 0, 6)
              << ",\n"
              << "  \"csv_identical\": " << (identical ? "true" : "false")
              << "\n}\n";
    return identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
