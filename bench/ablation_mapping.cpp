// ablation_mapping — Placement sensitivity: the paper maps MPI ranks to
// hosts sequentially (Sec. VI-B), which is what keeps CG's first four
// phases switch-local.  This bench replays CG.D-128 under sequential vs
// random placements to quantify how much of the application's performance
// is owed to that locality — and shows that routing quality still matters
// under either placement.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "trace/replayer.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  const xgft::Topology topo(xgft::karyNTree(16, 2));
  const auto cg = trace::scaleMessages(patterns::cgD128(), opt.msgScale);
  const sim::SimConfig cfg;
  const double reference = static_cast<double>(
      trace::runCrossbarReference(cg, cfg).makespanNs);
  std::cout << "== Ablation: process placement, CG.D-128 on "
            << topo.params().toString() << " ==\n"
            << "msg-scale=" << opt.msgScale << " seeds=" << opt.seeds
            << "\n\n";

  analysis::Table table({"placement", "scheme", "slowdown(med)",
                         "slowdown(min..max)"});
  const auto addRows = [&](const std::string& label, auto mappingOf) {
    for (const auto& make :
         {+[](const xgft::Topology& t) { return routing::makeDModK(t); },
          +[](const xgft::Topology& t) { return routing::makeRandom(t, 1); },
          +[](const xgft::Topology& t) {
            return routing::makeRNcaDown(t, 1);
          }}) {
      std::vector<double> samples;
      for (std::uint32_t seed = 1; seed <= opt.seeds; ++seed) {
        const trace::Mapping mapping = mappingOf(seed);
        const routing::RouterPtr router = make(topo);
        samples.push_back(static_cast<double>(
                              trace::runApp(topo, *router, cg, mapping, cfg)
                                  .makespanNs) /
                          reference);
      }
      const analysis::BoxStats stats = analysis::boxStats(samples);
      table.addRow({label, make(topo)->name(),
                    analysis::Table::num(stats.median),
                    analysis::Table::num(stats.min) + ".." +
                        analysis::Table::num(stats.max)});
      std::cerr << "  " << label << " scheme done\n";
    }
  };
  addRows("sequential", [&](std::uint32_t) {
    return trace::Mapping::sequential(cg.numRanks);
  });
  addRows("random", [&](std::uint32_t seed) {
    return trace::Mapping::random(cg.numRanks, topo.numHosts(), seed);
  });
  table.print(std::cout);
  std::cout << "\n(random placement destroys the switch-locality of CG's "
               "first four phases;\n the slowdown gap quantifies what "
               "sequential mapping buys)\n";
  return 0;
}
