// micro_sim — google-benchmark microbenchmarks for the simulator and the
// replay engine: event throughput under contended and uncontended traffic,
// and end-to-end application replay cost.
#include <benchmark/benchmark.h>

#include <limits>
#include <memory>

#include "core/compiled_routes.hpp"
#include "obs/recorder.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/relabel.hpp"
#include "sim/event_queue.hpp"
#include "trace/harness.hpp"
#include "trace/openloop.hpp"
#include "trace/replayer.hpp"

namespace {

void BM_PermutationOnFullTree(benchmark::State& state) {
  const xgft::Topology topo(xgft::karyNTree(16, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const patterns::Pattern perm =
      patterns::randomPermutation(256, 3).toPattern(16 * 1024);
  patterns::PhasedPattern app;
  app.numRanks = 256;
  app.phases.push_back(perm);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const trace::RunResult r = trace::runApp(topo, *router, app);
    events += r.stats.eventsProcessed;
    benchmark::DoNotOptimize(r.makespanNs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_PermutationOnFullTree)->Unit(benchmark::kMillisecond);

void BM_HotspotContention(benchmark::State& state) {
  // Worst-case queueing pressure: everyone hammers host 0.
  const xgft::Topology topo(xgft::xgft2(8, 8, 4));
  const routing::RouterPtr router = routing::makeDModK(topo);
  patterns::PhasedPattern app;
  app.numRanks = 64;
  patterns::Pattern hot(64);
  for (patterns::Rank r = 1; r < 64; ++r) hot.add(r, 0, 16 * 1024);
  app.phases.push_back(hot);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const trace::RunResult r = trace::runApp(topo, *router, app);
    events += r.stats.eventsProcessed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_HotspotContention)->Unit(benchmark::kMillisecond);

void BM_PermutationTelemetry(benchmark::State& state) {
  // The BM_PermutationOnFullTree workload with the obs::Recorder probe at
  // each level: 0 = detached (the null-check hot path — must match the
  // plain bench within noise, the DESIGN.md §9 overhead budget), 1 =
  // summary sampling only, 2 = sampling + bounded event log.
  const auto level = static_cast<int>(state.range(0));
  const xgft::Topology topo(xgft::karyNTree(16, 2));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const patterns::Pattern perm =
      patterns::randomPermutation(256, 3).toPattern(16 * 1024);
  patterns::PhasedPattern app;
  app.numRanks = 256;
  app.phases.push_back(perm);
  const trace::Trace t = trace::traceFromPhases(app);
  const trace::Mapping mapping = trace::Mapping::sequential(app.numRanks);
  std::uint64_t events = 0;
  for (auto _ : state) {
    obs::RecorderConfig cfg;
    cfg.recordEvents = (level == 2);
    obs::Recorder recorder(cfg);
    sim::Network net(topo, sim::SimConfig{});
    if (level > 0) net.setProbe(&recorder);
    trace::Replayer replayer(net, t, mapping, *router);
    benchmark::DoNotOptimize(replayer.run());
    events += net.stats().eventsProcessed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_PermutationTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_CgReplayScaled(benchmark::State& state) {
  // The Fig. 2(b) inner loop at the default bench message scale.
  const xgft::Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeDModK(topo);
  const patterns::PhasedPattern cg =
      trace::scaleMessages(patterns::cgD128(), 0.125);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::runApp(topo, *router, cg).makespanNs);
  }
}
BENCHMARK(BM_CgReplayScaled)->Unit(benchmark::kMillisecond);

void BM_CrossbarReference(benchmark::State& state) {
  const patterns::PhasedPattern cg =
      trace::scaleMessages(patterns::cgD128(), 0.125);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::runCrossbarReference(cg).makespanNs);
  }
}
BENCHMARK(BM_CrossbarReference)->Unit(benchmark::kMillisecond);

void BM_EventCoreChurn(benchmark::State& state) {
  // The event queue in isolation: a steady-state schedule/pop cycle with
  // simulator-shaped deltas (transfer latency, wire free, wire arrive) at
  // the given concurrency.  items = events popped.
  const auto width = static_cast<std::uint32_t>(state.range(0));
  static constexpr sim::TimeNs kDeltas[] = {100, 4096, 4116};
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::uint32_t i = 0; i < width; ++i) q.push(kDeltas[i % 3], 0, i, 0);
    sim::EventRecord ev{};
    for (std::uint32_t i = 0; i < 100000; ++i) {
      benchmark::DoNotOptimize(
          q.popUntil(std::numeric_limits<sim::TimeNs>::max(), ev));
      q.push(ev.t + kDeltas[i % 3], 0, ev.a, 0);
    }
    events += 100000;
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = queue pops");
}
BENCHMARK(BM_EventCoreChurn)->Arg(8)->Arg(256)->Arg(4096);

void BM_ParallelRun(benchmark::State& state) {
  // The sharded event core (sim/shard.hpp) against the serial baseline on
  // the paper's 160-host fabric near the saturation knee: an open-loop
  // Poisson uniform stream, the loadsweep campaign's inner loop.  Arg is
  // sim_threads; 1 is the serial reference path.  Results are pinned
  // byte-identical across args by tests/engine/parallel_identity_test.cpp,
  // so this measures pure engine cost.  items = simulator events.
  const auto simThreads = static_cast<std::uint32_t>(state.range(0));
  const xgft::Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr router = routing::makeDModK(topo);
  trace::OpenLoopOptions opt;
  opt.warmupNs = 50'000;
  opt.measureNs = 300'000;
  opt.simThreads = simThreads;
  std::uint64_t events = 0;
  for (auto _ : state) {
    patterns::OpenLoopConfig cfg;
    cfg.numRanks = static_cast<patterns::Rank>(topo.numHosts());
    cfg.load = 0.7;
    cfg.messageBytes = 4096;
    cfg.stopNs = opt.warmupNs + opt.measureNs;
    cfg.seed = 1;
    patterns::OpenLoopSource src(cfg);
    const trace::OpenLoopResult r = trace::runOpenLoop(topo, *router, src, opt);
    events += r.stats.eventsProcessed;
    benchmark::DoNotOptimize(r.acceptedLoad);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_ParallelRun)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const xgft::Topology topo(xgft::karyNTree(k, 2));
  for (auto _ : state) {
    sim::Network net(topo, sim::SimConfig{});
    benchmark::DoNotOptimize(net.numGlobalPorts());
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(8)->Arg(16)->Arg(32);

/// The scale-out-tier topologies of the route-compile benches below.
/// 0 = xgft3:8:8:8:4:4:2 (512 hosts), 1 = xgft3:16:16:16:1:8:8 (4096).
xgft::Params xgft3Tier(int tier) {
  return tier == 0 ? xgft::Params({8, 8, 8}, {4, 4, 2})
                   : xgft::Params({16, 16, 16}, {1, 8, 8});
}

void BM_NetworkConstruction3(benchmark::State& state) {
  const xgft::Topology topo(xgft3Tier(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    sim::Network net(topo, sim::SimConfig{});
    benchmark::DoNotOptimize(net.numGlobalPorts());
  }
  state.SetLabel(topo.params().toString());
}
BENCHMARK(BM_NetworkConstruction3)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RouteCompileFlat(benchmark::State& state) {
  // Eager dense O(H^2) compilation on the 512-host tier (the 4096-host
  // flat table is 218 MB — past the engine budget, hence the compressed
  // rows below).  Counters report the resident table footprint.
  const auto topo = std::make_shared<const xgft::Topology>(xgft3Tier(0));
  const std::shared_ptr<const routing::Router> router =
      routing::makeDModK(*topo);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto table =
        core::CompiledRoutes::compile(router, 1, core::TableLayout::kFlat);
    bytes = table->forwardingBytes();
    benchmark::DoNotOptimize(table->upPorts(0, 1).size());
  }
  state.counters["flat_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_RouteCompileFlat)->Unit(benchmark::kMillisecond);

void BM_RouteCompileCompressed(benchmark::State& state) {
  // Full (compileAll) interval-compressed compilation per tier; the
  // compressed_bytes counter against BM_RouteCompileFlat's flat_bytes (or
  // the analytic 218 MB at 4096 hosts) is the memory headline.
  const auto topo = std::make_shared<const xgft::Topology>(
      xgft3Tier(static_cast<int>(state.range(0))));
  const std::shared_ptr<const routing::Router> router =
      routing::makeDModK(*topo);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto table = core::CompiledRoutes::compile(
        router, 1, core::TableLayout::kCompressed);
    table->compileAll(1);
    bytes = table->forwardingBytes();
    benchmark::DoNotOptimize(table->upPorts(0, 1).size());
  }
  state.counters["compressed_bytes"] = static_cast<double>(bytes);
  state.counters["flat_bytes"] =
      static_cast<double>(core::CompiledRoutes::tableBytes(*topo));
  state.SetLabel(topo->params().toString());
}
BENCHMARK(BM_RouteCompileCompressed)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RouteCompileLazy(benchmark::State& state) {
  // What a sweep job actually pays: lookups against one 64-destination
  // chunk of the 4096-host tier build only that chunk.
  const auto topo = std::make_shared<const xgft::Topology>(xgft3Tier(1));
  const std::shared_ptr<const routing::Router> router =
      routing::makeDModK(*topo);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto table = core::CompiledRoutes::compile(
        router, 1, core::TableLayout::kCompressed);
    for (xgft::NodeIndex d = 0; d < core::CompiledRoutes::kChunkCols; ++d) {
      benchmark::DoNotOptimize(table->upPorts(1, d).size());
    }
    bytes = table->forwardingBytes();
  }
  state.counters["touched_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_RouteCompileLazy)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
