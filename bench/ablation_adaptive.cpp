// ablation_adaptive — Deterministic (oblivious) vs minimally-adaptive
// routing, the comparison behind the paper's Sec. I remark that adaptive
// algorithms "are not always better than oblivious algorithms" (Gómez et
// al. [6]).
//
// Adaptive picks the least-occupied up-port per segment at every switch.
// Expected outcome: adaptive rescues the CG congruence pathology without
// pattern knowledge, but on WRF it cannot beat the concentrating oblivious
// schemes (endpoint contention dominates, and adaptivity merely re-spreads
// it) — i.e. neither family dominates, matching [6].
#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Ablation: oblivious vs minimally-adaptive routing ==\n"
            << "msg-scale=" << opt.msgScale << "\n\n";
  analysis::Table table(
      {"app", "w2", "d-mod-k", "r-NCA-d", "Random", "adaptive"});
  for (const auto& fullApp : {patterns::wrf256(), patterns::cgD128()}) {
    const auto app = trace::scaleMessages(fullApp, opt.msgScale);
    const double reference = static_cast<double>(
        trace::runCrossbarReference(app).makespanNs);
    for (const std::uint32_t w2 : {16u, 10u, 4u}) {
      const xgft::Topology topo(xgft::xgft2(16, 16, w2));
      const auto slowdownOf = [&](const routing::Router& r) {
        return static_cast<double>(trace::runApp(topo, r, app).makespanNs) /
               reference;
      };
      const double adaptive =
          static_cast<double>(trace::runAppAdaptive(topo, app).makespanNs) /
          reference;
      table.addRow(
          {app.name, std::to_string(w2),
           analysis::Table::num(slowdownOf(*routing::makeDModK(topo))),
           analysis::Table::num(slowdownOf(*routing::makeRNcaDown(topo, 1))),
           analysis::Table::num(slowdownOf(*routing::makeRandom(topo, 1))),
           analysis::Table::num(adaptive)});
      std::cerr << "  " << app.name << " w2=" << w2 << " done\n";
    }
  }
  table.print(std::cout);
  return 0;
}
