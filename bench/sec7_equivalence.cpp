// sec7_equivalence — Numerical companion to Sec. VII-B/C: demonstrates
// that S-mod-k routing a pattern P produces exactly the same contention
// distribution as D-mod-k routing P^{-1}, for permutations and for general
// patterns, and that on symmetric application patterns the two schemes are
// outright identical.
#include <algorithm>
#include <iostream>
#include <map>

#include "analysis/contention.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "patterns/synthetic.hpp"
#include "routing/relabel.hpp"

namespace {

std::map<std::uint32_t, std::uint32_t> histogram(
    const xgft::Topology& topo, const patterns::Pattern& p,
    const routing::Router& router) {
  std::map<std::uint32_t, std::uint32_t> h;
  for (const auto& [nca, c] : analysis::ncaContention(topo, p, router)) {
    ++h[c];
  }
  return h;
}

std::string renderHistogram(const std::map<std::uint32_t, std::uint32_t>& h) {
  std::string out;
  for (const auto& [level, count] : h) {
    out += "C=" + std::to_string(level) + ":" + std::to_string(count) + " ";
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  const xgft::Topology topo(xgft::xgft2(16, 16, 10));
  const routing::RouterPtr smodk = routing::makeSModK(topo);
  const routing::RouterPtr dmodk = routing::makeDModK(topo);

  std::cout << "== Sec. VII-B: permutations — S-mod-k on P vs D-mod-k on "
               "P^-1 ==\n\n";
  analysis::Table perms({"seed", "S-mod-k on P", "D-mod-k on P^-1", "equal"});
  for (std::uint64_t seed = 1; seed <= opt.seeds; ++seed) {
    const patterns::Permutation perm = patterns::randomPermutation(256, seed);
    const auto a = histogram(topo, perm.toPattern(1000), *smodk);
    const auto b = histogram(topo, perm.inverse().toPattern(1000), *dmodk);
    perms.addRow({std::to_string(seed), renderHistogram(a),
                  renderHistogram(b), a == b ? "yes" : "NO"});
  }
  perms.print(std::cout);

  std::cout << "\n== Sec. VII-C: general patterns (unions of permutations) "
               "==\n\n";
  analysis::Table general({"seed", "S-mod-k on G", "D-mod-k on G^-1",
                           "equal"});
  for (std::uint64_t seed = 1; seed <= opt.seeds; ++seed) {
    const patterns::Pattern g =
        patterns::unionOfRandomPermutations(256, 3, 1000, seed);
    const auto a = histogram(topo, g, *smodk);
    const auto b = histogram(topo, g.inverse(), *dmodk);
    general.addRow({std::to_string(seed), renderHistogram(a),
                    renderHistogram(b), a == b ? "yes" : "NO"});
  }
  general.print(std::cout);

  std::cout << "\n== Symmetric application patterns route identically ==\n\n";
  analysis::Table apps({"pattern", "S-mod-k", "D-mod-k", "equal"});
  const patterns::PhasedPattern wrf = patterns::wrf256(1000);
  const patterns::PhasedPattern cg = patterns::cgD128(1000);
  for (const auto& [name, p] :
       std::vector<std::pair<std::string, patterns::Pattern>>{
           {"WRF-256", wrf.phases[0]},
           {"CG phase 5", cg.phases[4]},
           {"all-to-all", patterns::allToAll(256, 1)}}) {
    const auto a = histogram(topo, p, *smodk);
    const auto b = histogram(topo, p, *dmodk);
    apps.addRow({name, renderHistogram(a), renderHistogram(b),
                 a == b ? "yes" : "NO"});
  }
  apps.print(std::cout);
  return 0;
}
