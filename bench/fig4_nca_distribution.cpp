// fig4_nca_distribution — Regenerates Fig. 4: the distribution of routes
// assigned per NCA (root) for all ordered host pairs, on the full
// XGFT(2;16,16;1,16) and the slimmed XGFT(2;16,16;1,10).
//
// Expected shape (Sec. VII-D): S-mod-k and D-mod-k are perfectly flat at
// 3840 routes/NCA on the full tree but skewed 7680/3840 on the slimmed one
// (digits 10-15 wrap onto roots 0-5); Random and the r-NCA proposals are
// balanced (boxplots centred on the flat share) on both.
#include <iostream>

#include "analysis/contention.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "xgft/printer.hpp"

namespace {

void censusFor(const xgft::Topology& topo, const benchutil::Options& opt) {
  std::cout << "-- " << xgft::summary(topo) << " --\n\n";
  const auto modCensus = [&](const routing::RouterPtr& router) {
    return analysis::ncaRouteCensus(topo, *router, 2);
  };
  const auto sCensus = modCensus(routing::makeSModK(topo));
  const auto dCensus = modCensus(routing::makeDModK(topo));

  // Seeded algorithms: per-NCA boxplots over seeds.
  const auto seededStats = [&](auto make) {
    std::vector<std::vector<double>> perNca(topo.nodesAtLevel(2));
    for (std::uint32_t seed = 1; seed <= opt.seeds; ++seed) {
      const routing::RouterPtr router = make(topo, seed);
      const auto census = analysis::ncaRouteCensus(topo, *router, 2);
      for (std::size_t n = 0; n < census.size(); ++n) {
        perNca[n].push_back(static_cast<double>(census[n]));
      }
    }
    std::vector<analysis::BoxStats> stats;
    stats.reserve(perNca.size());
    for (auto& sample : perNca) stats.push_back(analysis::boxStats(sample));
    return stats;
  };
  const auto randomStats =
      seededStats([](const xgft::Topology& t, std::uint64_t s) {
        return routing::makeRandom(t, s);
      });
  const auto rncaUStats =
      seededStats([](const xgft::Topology& t, std::uint64_t s) {
        return routing::makeRNcaUp(t, s);
      });
  const auto rncaDStats =
      seededStats([](const xgft::Topology& t, std::uint64_t s) {
        return routing::makeRNcaDown(t, s);
      });

  analysis::Table table({"NCA", "s-mod-k", "d-mod-k", "Random(med)",
                         "Random(min..max)", "r-NCA-u(med)", "r-NCA-d(med)"});
  for (std::size_t n = 0; n < sCensus.size(); ++n) {
    table.addRow(
        {std::to_string(n), std::to_string(sCensus[n]),
         std::to_string(dCensus[n]),
         analysis::Table::num(randomStats[n].median, 0),
         analysis::Table::num(randomStats[n].min, 0) + ".." +
             analysis::Table::num(randomStats[n].max, 0),
         analysis::Table::num(rncaUStats[n].median, 0),
         analysis::Table::num(rncaDStats[n].median, 0)});
  }
  if (opt.csv) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Fig. 4: distribution of routes per NCA (all " << 256 * 240
            << " inter-switch pairs; " << opt.seeds
            << " seeds for randomized algorithms) ==\n\n";
  censusFor(xgft::Topology(xgft::karyNTree(16, 2)), opt);
  censusFor(xgft::Topology(xgft::xgft2(16, 16, 10)), opt);
  return 0;
}
