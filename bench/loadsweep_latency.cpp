// loadsweep_latency — Load–latency curves on the paper's trees: offered
// load vs accepted throughput and latency percentiles under open-loop
// uniform Poisson traffic, for the static d-mod-k table, Random and the
// minimally-adaptive per-hop scheme.
//
// Expected shape: accepted tracks offered up to the scheme's saturation
// point, then plateaus while p99 latency explodes — the classic knee of
// the random-traffic methodology (Sec. VII-C, Zahavi et al. [9]).  On the
// slimmed tree (w2 = 10) static d-mod-k saturates well below the 10/16
// bisection bound; adaptive routing pushes the knee to the right.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace {

std::string campaignText(double msgScale, bool quick) {
  std::ostringstream os;
  const char* loads = quick ? "{0.1,0.3,0.5,0.7,0.9}"
                            : "{0.05,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1}";
  for (const char* topo : {"paper-full", "paper-slim"}) {
    os << "topo=" << topo << " source=poisson:uniform load=" << loads
       << " msg_scale=" << engine::formatShortest(msgScale)
       << " routing={d-mod-k,Random,adaptive} seed=1\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  const bool quick = opt.seeds <= 3;
  std::cout << "== Load-latency sweep: open-loop uniform Poisson on "
               "XGFT(2;16,16;1,{16,10}) ==\n"
            << "msg-scale=" << engine::formatShortest(opt.msgScale)
            << " (message = " << static_cast<int>(4096 * opt.msgScale)
            << " B)\n\n";

  const std::vector<engine::ExperimentSpec> specs =
      engine::parseCampaign(campaignText(opt.msgScale, quick));
  engine::RunnerOptions ropt;
  ropt.threads = opt.threads;
  ropt.collectContention = false;
  engine::Runner runner(ropt);
  const engine::CampaignResults results = runner.run(specs);

  if (opt.csv) {
    results.writeCsv(std::cout);
    return 0;
  }
  std::cout << std::left << std::setw(12) << "topo" << std::setw(10)
            << "routing" << std::right << std::setw(9) << "offered"
            << std::setw(10) << "accepted" << std::setw(12) << "p50 (ns)"
            << std::setw(12) << "p99 (ns)" << std::setw(12) << "max (ns)"
            << "\n";
  for (const engine::JobResult& job : results.jobs) {
    if (!job.ok) {
      std::cout << "job " << job.jobIndex << " FAILED: " << job.error << "\n";
      continue;
    }
    const bool slim = job.spec.topo.w(2) != 16;
    std::cout << std::left << std::setw(12)
              << (slim ? "paper-slim" : "paper-full") << std::setw(10)
              << job.spec.routing << std::right << std::setw(9)
              << engine::formatFixed(job.offeredLoad, 3) << std::setw(10)
              << engine::formatFixed(job.acceptedLoad, 3) << std::setw(12)
              << job.latencyP50Ns << std::setw(12) << job.latencyP99Ns
              << std::setw(12) << job.latencyMaxNs << "\n";
  }
  std::cout << "\n" << results.jobs.size() << " operating points on "
            << results.threadsUsed << " thread(s) in "
            << static_cast<double>(results.wallTimeNs) / 1e9 << " s\n";
  return 0;
}
