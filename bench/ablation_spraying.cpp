// ablation_spraying — Extension study: per-segment multipath spraying
// (packet-granular randomized routing, Greenberg & Leiserson [16]) against
// the paper's static per-pair schemes.
//
// The paper analyzes *static* oblivious routing; its Random baseline pins
// one random NCA per pair for the whole run.  Spraying instead re-spreads
// every 1 KB segment, trading ordered delivery for statistical load
// balance.  Expected outcome: spraying erases the CG congruence pathology
// (like r-NCA) *and* the static-Random penalty on WRF endpoint
// concentration is reduced because no link stays unlucky for a whole
// message — but it cannot beat the concentrating schemes where endpoint
// contention dominates.
#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Ablation: static schemes vs per-segment spraying ==\n"
            << "msg-scale=" << opt.msgScale << "\n\n";
  analysis::Table table({"app", "w2", "d-mod-k", "Random(static)",
                         "r-NCA-d", "spray-RR", "spray-random"});
  for (const auto& fullApp : {patterns::wrf256(), patterns::cgD128()}) {
    const auto app = trace::scaleMessages(fullApp, opt.msgScale);
    const double reference = static_cast<double>(
        trace::runCrossbarReference(app).makespanNs);
    for (const std::uint32_t w2 : {16u, 10u, 4u}) {
      const xgft::Topology topo(xgft::xgft2(16, 16, w2));
      const auto slowdownOf = [&](const routing::Router& r) {
        return static_cast<double>(
                   trace::runApp(topo, r, app).makespanNs) /
               reference;
      };
      const auto sprayedSlowdown = [&](sim::SprayPolicy policy) {
        trace::SprayConfig spray;
        spray.enabled = true;
        spray.policy = policy;
        return static_cast<double>(
                   trace::runAppSprayed(topo, app, spray).makespanNs) /
               reference;
      };
      table.addRow(
          {app.name, std::to_string(w2),
           analysis::Table::num(slowdownOf(*routing::makeDModK(topo))),
           analysis::Table::num(slowdownOf(*routing::makeRandom(topo, 1))),
           analysis::Table::num(slowdownOf(*routing::makeRNcaDown(topo, 1))),
           analysis::Table::num(sprayedSlowdown(sim::SprayPolicy::kRoundRobin)),
           analysis::Table::num(sprayedSlowdown(sim::SprayPolicy::kRandom))});
      std::cerr << "  " << app.name << " w2=" << w2 << " done\n";
    }
  }
  table.print(std::cout);
  return 0;
}
