// fig1_topologies — Regenerates Fig. 1 ("Several XGFTs"): renders a set of
// small example topologies (per-level structure + Graphviz DOT) including
// a k-ary n-tree, slimmed variants, and an m-ary complete tree, showing
// the family's reach (Sec. II).
#include <iostream>

#include "xgft/printer.hpp"

int main(int argc, char** argv) {
  const bool dot = argc > 1 && std::string(argv[1]) == "--dot";
  const std::vector<xgft::Params> examples{
      xgft::karyNTree(2, 3),                 // 2-ary 3-tree.
      xgft::xgft2(4, 4, 2),                  // Slimmed 4-ary 2-tree.
      xgft::Params({3, 3}, {1, 1}),          // Ternary complete tree.
      xgft::Params({4, 3, 2}, {1, 2, 2}),    // Irregular XGFT.
      xgft::slimmedKaryNTree(4, 3, {4, 2}),  // Top-slimmed 4-ary 3-tree.
  };
  for (const xgft::Params& params : examples) {
    const xgft::Topology topo(params);
    std::cout << "== " << xgft::summary(topo) << " ==\n";
    xgft::printLevelTable(topo, std::cout);
    if (dot) {
      std::cout << "\n";
      xgft::printDot(topo, std::cout);
    }
    std::cout << "\n";
  }
  std::cout << "(pass --dot for Graphviz output)\n";
  return 0;
}
