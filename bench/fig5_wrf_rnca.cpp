// fig5_wrf_rnca — Regenerates Fig. 5(a): the WRF-256 slimming sweep with
// the paper's proposals, Random-NCA-Up and Random-NCA-Down, reported as
// boxplots over many seeds next to the centered S-mod-k / D-mod-k /
// Colored lines and the Random boxplot.
//
// Expected shape (Sec. IX): r-NCA-u/d always better than Random and close
// to S-mod-k / D-mod-k / Colored for most w2.
#include <iostream>

#include "bench_util.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Fig. 5(a): WRF-256 with r-NCA-u / r-NCA-d "
               "(XGFT(2;16,16;1,w2)) ==\n"
            << "msg-scale=" << opt.msgScale << " seeds=" << opt.seeds
            << "\n\n";
  const auto points =
      benchutil::slimmingSweep("wrf256", opt, /*withRnca=*/true, std::cerr);
  benchutil::printSweep(points, opt, std::cout);
  return 0;
}
