// micro_routing — google-benchmark microbenchmarks for the routing layer:
// per-pair route computation throughput of every scheme (virtual route()
// vs the compiled forwarding-table lookup), table compilation cost,
// relabel-scheme construction, Colored optimization and the edge-coloring
// substrate.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/compiled_routes.hpp"
#include "patterns/applications.hpp"
#include "patterns/permutation.hpp"
#include "routing/colored.hpp"
#include "routing/edge_coloring.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "xgft/rng.hpp"

namespace {

const xgft::Topology& paperTopo() {
  static const xgft::Topology topo(xgft::xgft2(16, 16, 10));
  return topo;
}

void routeSweep(benchmark::State& state, const routing::Router& router) {
  const xgft::Count n = router.topology().numHosts();
  std::uint64_t pair = 0;
  for (auto _ : state) {
    const xgft::NodeIndex s = static_cast<xgft::NodeIndex>(pair % n);
    const xgft::NodeIndex d =
        static_cast<xgft::NodeIndex>((pair * 37 + 11) % n);
    benchmark::DoNotOptimize(router.route(s, d));
    ++pair;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RouteSModK(benchmark::State& state) {
  const routing::RouterPtr r = routing::makeSModK(paperTopo());
  routeSweep(state, *r);
}
BENCHMARK(BM_RouteSModK);

void BM_RouteDModK(benchmark::State& state) {
  const routing::RouterPtr r = routing::makeDModK(paperTopo());
  routeSweep(state, *r);
}
BENCHMARK(BM_RouteDModK);

void BM_RouteRandom(benchmark::State& state) {
  const routing::RouterPtr r = routing::makeRandom(paperTopo(), 1);
  routeSweep(state, *r);
}
BENCHMARK(BM_RouteRandom);

void BM_RouteRNcaDown(benchmark::State& state) {
  const routing::RouterPtr r = routing::makeRNcaDown(paperTopo(), 1);
  routeSweep(state, *r);
}
BENCHMARK(BM_RouteRNcaDown);

void BM_RouteColored(benchmark::State& state) {
  static const routing::ColoredRouter router(paperTopo(),
                                             patterns::cgD128(1024));
  routeSweep(state, router);
}
BENCHMARK(BM_RouteColored);

// --- virtual route() vs compiled-table lookup --------------------------------
// The replayer's per-message hot path: the engine compiles static schemes
// into core::CompiledRoutes once and replaces the virtual dispatch below
// with the flat lookup benchmarked here (numbers recorded in DESIGN.md §6).

std::shared_ptr<const core::CompiledRoutes> compiledOf(routing::RouterPtr r) {
  std::shared_ptr<const routing::Router> shared(std::move(r));
  return core::CompiledRoutes::compile(std::move(shared), 1);
}

void compiledSweep(benchmark::State& state,
                   const core::CompiledRoutes& table) {
  const xgft::Count n = table.topology().numHosts();
  std::uint64_t pair = 0;
  for (auto _ : state) {
    const xgft::NodeIndex s = static_cast<xgft::NodeIndex>(pair % n);
    const xgft::NodeIndex d =
        static_cast<xgft::NodeIndex>((pair * 37 + 11) % n);
    benchmark::DoNotOptimize(table.upPorts(s, d).data());
    ++pair;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CompiledLookupDModK(benchmark::State& state) {
  static const auto table = compiledOf(routing::makeDModK(paperTopo()));
  compiledSweep(state, *table);
}
BENCHMARK(BM_CompiledLookupDModK);

void BM_CompiledLookupRandom(benchmark::State& state) {
  static const auto table = compiledOf(routing::makeRandom(paperTopo(), 1));
  compiledSweep(state, *table);
}
BENCHMARK(BM_CompiledLookupRandom);

void BM_CompileTableDModK(benchmark::State& state) {
  const xgft::Count n = paperTopo().numHosts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiledOf(routing::makeDModK(paperTopo())));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_CompileTableDModK);

void BM_BuildBalancedRandomScheme(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const xgft::Topology topo(xgft::karyNTree(n, 2));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::RelabelScheme::balancedRandom(topo, ++seed));
  }
}
BENCHMARK(BM_BuildBalancedRandomScheme)->Arg(8)->Arg(16)->Arg(32);

void BM_ColoredOptimizeCg(benchmark::State& state) {
  const patterns::PhasedPattern cg = patterns::cgD128(1024);
  for (auto _ : state) {
    const routing::ColoredRouter router(paperTopo(), cg);
    benchmark::DoNotOptimize(router.estimatedMaxDemand());
  }
}
BENCHMARK(BM_ColoredOptimizeCg);

void BM_EdgeColoring(benchmark::State& state) {
  const auto edges = static_cast<std::size_t>(state.range(0));
  routing::BipartiteMultigraph g;
  g.numLeft = g.numRight = 16;
  xgft::Rng rng(7);
  for (std::size_t e = 0; e < edges; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(16)),
                         static_cast<std::uint32_t>(rng.below(16)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::colorBipartiteEdges(g));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * edges));
}
BENCHMARK(BM_EdgeColoring)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
