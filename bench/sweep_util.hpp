// sweep_util.hpp — The progressive tree-slimming sweep shared by the
// Fig. 2 and Fig. 5 harnesses.
//
// Both figures plot slowdown vs. Full-Crossbar on XGFT(2;16,16;1,w2) for
// w2 = 16..1.  Fig. 2 compares {Random, S-mod-k, D-mod-k, Colored}; Fig. 5
// adds the proposals {r-NCA-u, r-NCA-d} as boxplots over many seeds.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "patterns/pattern.hpp"
#include "routing/colored.hpp"
#include "routing/random_router.hpp"
#include "routing/relabel.hpp"
#include "trace/harness.hpp"
#include "xgft/topology.hpp"

namespace benchutil {

/// Measured slowdowns at one w2 point.
struct SweepPoint {
  std::uint32_t w2 = 0;
  std::map<std::string, double> centered;           ///< Deterministic lines.
  std::map<std::string, analysis::BoxStats> boxes;  ///< Seeded algorithms.
};

/// Runs the progressive-slimming sweep of the given application.
/// @p withRnca adds the Fig. 5 proposals; Random is always box-plotted over
/// opt.seeds seeds (the paper plots it centered in Fig. 2 and boxed in
/// Fig. 5 — the median is reported either way).
inline std::vector<SweepPoint> slimmingSweep(
    const patterns::PhasedPattern& fullApp, const Options& opt,
    bool withRnca, std::ostream& log) {
  const patterns::PhasedPattern app =
      trace::scaleMessages(fullApp, opt.msgScale);
  const sim::SimConfig cfg;
  // The crossbar reference does not depend on the topology: compute once.
  const double reference = static_cast<double>(
      trace::runCrossbarReference(app, cfg).makespanNs);

  std::vector<SweepPoint> points;
  for (std::uint32_t w2 = 16; w2 >= 1; --w2) {
    const xgft::Topology topo(xgft::xgft2(16, 16, w2));
    SweepPoint point;
    point.w2 = w2;
    const auto slowdownOf = [&](const routing::Router& router) {
      return static_cast<double>(
                 trace::runApp(topo, router, app, cfg).makespanNs) /
             reference;
    };

    point.centered["s-mod-k"] = slowdownOf(*routing::makeSModK(topo));
    point.centered["d-mod-k"] = slowdownOf(*routing::makeDModK(topo));
    const routing::ColoredRouter colored(topo, app);
    point.centered["colored"] = slowdownOf(colored);

    std::vector<double> random;
    std::vector<double> rncaU;
    std::vector<double> rncaD;
    for (std::uint32_t seed = 1; seed <= opt.seeds; ++seed) {
      random.push_back(slowdownOf(*routing::makeRandom(topo, seed)));
      if (withRnca) {
        rncaU.push_back(slowdownOf(*routing::makeRNcaUp(topo, seed)));
        rncaD.push_back(slowdownOf(*routing::makeRNcaDown(topo, seed)));
      }
    }
    point.boxes["Random"] = analysis::boxStats(random);
    if (withRnca) {
      point.boxes["r-NCA-u"] = analysis::boxStats(rncaU);
      point.boxes["r-NCA-d"] = analysis::boxStats(rncaD);
    }
    log << "  w2=" << w2 << " done\n" << std::flush;
    points.push_back(std::move(point));
  }
  return points;
}

/// Renders the sweep in the paper's orientation: one row per w2, one column
/// per algorithm (medians for boxed algorithms), then per-algorithm boxplot
/// detail tables.
inline void printSweep(const std::vector<SweepPoint>& points,
                       const Options& opt, std::ostream& os) {
  if (points.empty()) return;
  std::vector<std::string> header{"w2", "Full-Crossbar"};
  for (const auto& [name, v] : points.front().centered) header.push_back(name);
  for (const auto& [name, v] : points.front().boxes) {
    header.push_back(name + "(med)");
  }
  analysis::Table table(header);
  for (const SweepPoint& p : points) {
    std::vector<std::string> row{std::to_string(p.w2), "1.000"};
    for (const auto& [name, v] : p.centered) {
      row.push_back(analysis::Table::num(v));
    }
    for (const auto& [name, b] : p.boxes) {
      row.push_back(analysis::Table::num(b.median));
    }
    table.addRow(std::move(row));
  }
  if (opt.csv) {
    table.printCsv(os);
  } else {
    table.print(os);
  }

  for (const auto& [name, unused] : points.front().boxes) {
    os << "\nboxplot: " << name << " (" << opt.seeds << " seeds)\n";
    analysis::Table box({"w2", "min", "q1", "median", "q3", "max"});
    for (const SweepPoint& p : points) {
      const analysis::BoxStats& b = p.boxes.at(name);
      box.addRow({std::to_string(p.w2), analysis::Table::num(b.min),
                  analysis::Table::num(b.q1), analysis::Table::num(b.median),
                  analysis::Table::num(b.q3), analysis::Table::num(b.max)});
    }
    if (opt.csv) {
      box.printCsv(os);
    } else {
      box.print(os);
    }
  }
}

}  // namespace benchutil
