// sweep_util.hpp — The progressive tree-slimming sweep shared by the
// Fig. 2 and Fig. 5 harnesses, expressed as an engine campaign.
//
// Both figures plot slowdown vs. Full-Crossbar on XGFT(2;16,16;1,w2) for
// w2 = 16..1.  Fig. 2 compares {Random, S-mod-k, D-mod-k, Colored}; Fig. 5
// adds the proposals {r-NCA-u, r-NCA-d} as boxplots over many seeds.
//
// The sweep is declared as a list of ExperimentSpecs and executed by
// engine::Runner, so it shards over all cores (--threads), reuses each w2
// topology across algorithms and seeds, and simulates the Full-Crossbar
// reference exactly once — while producing the same numbers the serial
// harness produced (the engine's per-job results are thread-count
// independent).
#pragma once

#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "engine/runner.hpp"
#include "engine/spec.hpp"

namespace benchutil {

/// Measured slowdowns at one w2 point.
struct SweepPoint {
  std::uint32_t w2 = 0;
  std::map<std::string, double> centered;           ///< Deterministic lines.
  std::map<std::string, analysis::BoxStats> boxes;  ///< Seeded algorithms.
};

/// Runs the progressive-slimming sweep of the builtin workload named by
/// @p patternSpec ("cg128", "wrf256", ... — see engine::makeWorkload).
/// @p withRnca adds the Fig. 5 proposals; Random is always box-plotted over
/// opt.seeds seeds (the paper plots it centered in Fig. 2 and boxed in
/// Fig. 5 — the median is reported either way).
inline std::vector<SweepPoint> slimmingSweep(const std::string& patternSpec,
                                             const Options& opt, bool withRnca,
                                             std::ostream& log) {
  std::vector<engine::ExperimentSpec> specs;
  const auto pushSpec = [&](std::uint32_t w2, const std::string& scheme,
                            std::uint64_t seed) {
    engine::ExperimentSpec spec;
    spec.topo = xgft::xgft2(16, 16, w2);
    spec.pattern = patternSpec;
    spec.routing = scheme;
    spec.msgScale = opt.msgScale;
    spec.seed = seed;
    specs.push_back(std::move(spec));
  };
  std::vector<std::string> boxed{"Random"};
  if (withRnca) {
    boxed.push_back("r-NCA-u");
    boxed.push_back("r-NCA-d");
  }
  for (std::uint32_t w2 = 16; w2 >= 1; --w2) {
    pushSpec(w2, "s-mod-k", 1);
    pushSpec(w2, "d-mod-k", 1);
    pushSpec(w2, "colored", 1);
    for (const std::string& scheme : boxed) {
      for (std::uint32_t seed = 1; seed <= opt.seeds; ++seed) {
        pushSpec(w2, scheme, seed);
      }
    }
  }

  engine::RunnerOptions ropt;
  ropt.threads = opt.threads;
  ropt.collectContention = false;  // The figures only need slowdowns.
  std::size_t done = 0;
  ropt.onJobDone = [&](const engine::JobResult&) {
    if (++done % 25 == 0 || done == specs.size()) {
      log << "  " << done << "/" << specs.size() << " jobs done\n"
          << std::flush;
    }
  };
  engine::Runner runner(ropt);
  const engine::CampaignResults results = runner.run(specs);

  // Reassemble figure points; the campaign order above is deterministic, so
  // jobs can be consumed sequentially.
  std::vector<SweepPoint> points;
  std::size_t next = 0;
  const auto take = [&]() -> const engine::JobResult& {
    const engine::JobResult& job = results.jobs.at(next++);
    if (!job.ok) {
      throw std::runtime_error("sweep job failed (" + job.spec.toLine() +
                               "): " + job.error);
    }
    return job;
  };
  for (std::uint32_t w2 = 16; w2 >= 1; --w2) {
    SweepPoint point;
    point.w2 = w2;
    point.centered["s-mod-k"] = take().slowdown;
    point.centered["d-mod-k"] = take().slowdown;
    point.centered["colored"] = take().slowdown;
    for (const std::string& scheme : boxed) {
      std::vector<double> sample;
      sample.reserve(opt.seeds);
      for (std::uint32_t seed = 1; seed <= opt.seeds; ++seed) {
        sample.push_back(take().slowdown);
      }
      point.boxes[scheme] = analysis::boxStats(sample);
    }
    points.push_back(std::move(point));
  }
  return points;
}

/// Renders the sweep in the paper's orientation: one row per w2, one column
/// per algorithm (medians for boxed algorithms), then per-algorithm boxplot
/// detail tables.
inline void printSweep(const std::vector<SweepPoint>& points,
                       const Options& opt, std::ostream& os) {
  if (points.empty()) return;
  std::vector<std::string> header{"w2", "Full-Crossbar"};
  for (const auto& [name, v] : points.front().centered) header.push_back(name);
  for (const auto& [name, v] : points.front().boxes) {
    header.push_back(name + "(med)");
  }
  analysis::Table table(header);
  for (const SweepPoint& p : points) {
    std::vector<std::string> row{std::to_string(p.w2), "1.000"};
    for (const auto& [name, v] : p.centered) {
      row.push_back(analysis::Table::num(v));
    }
    for (const auto& [name, b] : p.boxes) {
      row.push_back(analysis::Table::num(b.median));
    }
    table.addRow(std::move(row));
  }
  if (opt.csv) {
    table.printCsv(os);
  } else {
    table.print(os);
  }

  for (const auto& [name, unused] : points.front().boxes) {
    os << "\nboxplot: " << name << " (" << opt.seeds << " seeds)\n";
    analysis::Table box({"w2", "min", "q1", "median", "q3", "max"});
    for (const SweepPoint& p : points) {
      const analysis::BoxStats& b = p.boxes.at(name);
      box.addRow({std::to_string(p.w2), analysis::Table::num(b.min),
                  analysis::Table::num(b.q1), analysis::Table::num(b.median),
                  analysis::Table::num(b.q3), analysis::Table::num(b.max)});
    }
    if (opt.csv) {
      box.printCsv(os);
    } else {
      box.print(os);
    }
  }
}

}  // namespace benchutil
