// fig3_cg_pattern — Regenerates Fig. 3: the CG.D-128 traffic pattern.
//
// (a) The execution-trace view: the five exchange phases in order, with
//     locality classification and byte volumes.
// (b) The communication matrix (flattened across phases), rendered as
//     ASCII art ('#' = communicating pair), plus the Eq. (2) mapping table
//     for the non-local fifth phase.
#include <iostream>

#include "analysis/report.hpp"
#include "patterns/applications.hpp"

int main() {
  const patterns::PhasedPattern cg = patterns::cgD128();
  std::cout << "== Fig. 3(a): CG.D-128 phase structure ==\n\n";
  analysis::Table phases(
      {"phase", "flows", "self", "switch-local", "remote", "KB/msg"});
  for (std::size_t i = 0; i < cg.phases.size(); ++i) {
    const patterns::Pattern& p = cg.phases[i];
    std::uint32_t self = 0;
    std::uint32_t local = 0;
    std::uint32_t remote = 0;
    for (const patterns::Flow& f : p.flows()) {
      if (f.src == f.dst) {
        ++self;
      } else if (f.src / 16 == f.dst / 16) {
        ++local;
      } else {
        ++remote;
      }
    }
    phases.addRow({std::to_string(i + 1), std::to_string(p.size()),
                   std::to_string(self), std::to_string(local),
                   std::to_string(remote),
                   std::to_string(p.flows().front().bytes / 1024)});
  }
  phases.print(std::cout);

  std::cout << "\n== Eq. (2): phase-5 destination function ==\n\n";
  analysis::Table eq2({"block", "src(local j)", "dst rank", "dst switch",
                       "dst M1 digit (D-mod-k root)"});
  for (patterns::Rank j = 0; j < 16; ++j) {
    const patterns::Rank d = patterns::cgPhase5Destination(j, 128, 16);
    eq2.addRow({"0", std::to_string(j), std::to_string(d),
                std::to_string(d / 16), std::to_string(d % 16)});
  }
  eq2.print(std::cout);
  std::cout << "\n(per switch, the D-mod-k root digit takes only two values "
               "-> the Sec. VII-A pathology)\n";

  std::cout << "\n== Fig. 3(b): communication matrix (all phases) ==\n\n";
  std::cout << cg.flattened().matrixArt();
  return 0;
}
