// fig2_wrf_slimming — Regenerates Fig. 2(a): WRF-256 slowdown vs. the
// Full-Crossbar on progressively slimmed XGFT(2;16,16;1,w2) topologies
// under Random, S-mod-k, D-mod-k and the pattern-aware Colored baseline.
//
// Expected shape (Sec. VII-A): Random clearly worse than the concentrating
// schemes at every w2; S-mod-k == D-mod-k == Colored within noise; slowdown
// grows towards w2 = 1 where the tree degenerates to a single k-ary tree.
#include <iostream>

#include "bench_util.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Fig. 2(a): WRF, progressive tree-slimming "
               "(XGFT(2;16,16;1,w2)) ==\n"
            << "msg-scale=" << opt.msgScale << " seeds=" << opt.seeds
            << "\n\n";
  const auto points =
      benchutil::slimmingSweep("wrf256", opt, /*withRnca=*/false, std::cerr);
  benchutil::printSweep(points, opt, std::cout);
  return 0;
}
