// ablation_colored_seeding — What does each piece of the Colored optimizer
// buy?  Forces a single seeding strategy (König edge coloring, D-mod-k,
// S-mod-k, or pure greedy) per run and compares the residual effective
// demand and the simulated slowdown, on both applications.
//
// Expected outcome: the König seed is what guarantees the ceil(Δ/w2)
// optimum on permutation phases (CG); the mod seeds win on WRF where the
// optimum *is* the mod assignment; greedy alone is competitive but not
// optimal — justifying the multi-seed default (DESIGN.md §4).
#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "patterns/applications.hpp"
#include "routing/colored.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Ablation: Colored seeding strategy ==\n"
            << "msg-scale=" << opt.msgScale << "\n\n";
  analysis::Table table(
      {"app", "w2", "seed strategy", "est. max demand", "slowdown"});
  const std::vector<std::pair<std::string, routing::ColoredSeed>> strategies{
      {"best-of-all", routing::ColoredSeed::kBest},
      {"edge-coloring", routing::ColoredSeed::kEdgeColoring},
      {"d-mod-k", routing::ColoredSeed::kDModK},
      {"s-mod-k", routing::ColoredSeed::kSModK},
      {"greedy", routing::ColoredSeed::kGreedy},
  };
  for (const auto& fullApp : {patterns::wrf256(), patterns::cgD128()}) {
    const auto app = trace::scaleMessages(fullApp, opt.msgScale);
    const double reference = static_cast<double>(
        trace::runCrossbarReference(app).makespanNs);
    for (const std::uint32_t w2 : {16u, 10u}) {
      const xgft::Topology topo(xgft::xgft2(16, 16, w2));
      for (const auto& [name, strategy] : strategies) {
        routing::ColoredOptions options;
        options.seedStrategy = strategy;
        const routing::ColoredRouter colored(topo, app, options);
        const double slowdown =
            static_cast<double>(
                trace::runApp(topo, colored, app).makespanNs) /
            reference;
        table.addRow({app.name, std::to_string(w2), name,
                      analysis::Table::num(colored.estimatedMaxDemand(), 2),
                      analysis::Table::num(slowdown)});
      }
      std::cerr << "  " << app.name << " w2=" << w2 << " done\n";
    }
  }
  table.print(std::cout);
  return 0;
}
