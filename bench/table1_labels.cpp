// table1_labels — Regenerates Table I (node/link labeling per level) and
// checks Eq. (1) switch counts across the paper's topology sweep.
//
// Output: the per-level summary for the two topologies discussed in the
// text (the full 16-ary 2-tree and its w2=10 slimming), a full label
// listing for a small XGFT, and the Eq. (1) inner-switch counts for the
// Fig. 2/5 slimming axis.
#include <iostream>

#include "analysis/report.hpp"
#include "xgft/printer.hpp"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "== Table I: per-level labeling ==\n\n";
  for (const xgft::Params& params :
       {xgft::karyNTree(16, 2), xgft::xgft2(16, 16, 10)}) {
    const xgft::Topology topo(params);
    xgft::printLevelTable(topo, std::cout);
    std::cout << "\n";
  }

  std::cout << "== Full labels of a small XGFT(3; 2,2,2; 1,2,2) ==\n\n";
  const xgft::Topology small(xgft::Params({2, 2, 2}, {1, 2, 2}));
  xgft::printAllLabels(small, std::cout);

  std::cout << "\n== Eq. (1): inner switches along the Fig. 2/5 sweep ==\n\n";
  analysis::Table table({"topology", "hosts", "inner-switches", "links"});
  for (std::uint32_t w2 = 16; w2 >= 1; --w2) {
    const xgft::Params p = xgft::xgft2(16, 16, w2);
    table.addRow({p.toString(), std::to_string(p.numLeaves()),
                  std::to_string(p.numInnerSwitches()),
                  std::to_string(p.numLinks())});
  }
  table.print(std::cout);
  return 0;
}
