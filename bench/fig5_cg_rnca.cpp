// fig5_cg_rnca — Regenerates Fig. 5(b): the CG.D-128 slimming sweep with
// Random-NCA-Up and Random-NCA-Down boxplots.
//
// Expected shape (Sec. IX): r-NCA-u/d statistically better than Random for
// all w2 and clear of the S-mod-k / D-mod-k pathology, with a remaining gap
// to the pattern-aware Colored bound.
#include <iostream>

#include "bench_util.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Fig. 5(b): CG.D-128 with r-NCA-u / r-NCA-d "
               "(XGFT(2;16,16;1,w2)) ==\n"
            << "msg-scale=" << opt.msgScale << " seeds=" << opt.seeds
            << "\n\n";
  const auto points =
      benchutil::slimmingSweep("cg128", opt, /*withRnca=*/true, std::cerr);
  benchutil::printSweep(points, opt, std::cout);
  return 0;
}
