// fig2_cg_slimming — Regenerates Fig. 2(b): CG.D-128 slowdown vs. the
// Full-Crossbar on progressively slimmed XGFT(2;16,16;1,w2) topologies
// under Random, S-mod-k, D-mod-k and the pattern-aware Colored baseline.
//
// Expected shape (Sec. VII-A): S-mod-k and D-mod-k suffer the Eq. (2)
// congruence pathology (worse than a factor of two over Colored even on the
// full tree); Random sits between them and Colored for most w2.
#include <iostream>

#include "bench_util.hpp"
#include "sweep_util.hpp"

int main(int argc, char** argv) {
  const benchutil::Options opt = benchutil::Options::parse(argc, argv);
  std::cout << "== Fig. 2(b): CG.D-128, progressive tree-slimming "
               "(XGFT(2;16,16;1,w2)) ==\n"
            << "msg-scale=" << opt.msgScale << " seeds=" << opt.seeds
            << "\n\n";
  const auto points =
      benchutil::slimmingSweep("cg128", opt, /*withRnca=*/false, std::cerr);
  benchutil::printSweep(points, opt, std::cout);
  return 0;
}
