// bench_util.hpp — Shared command-line handling for the figure harnesses.
//
// Every figure/table bench accepts:
//   --quick            CI-sized run (few seeds, scaled-down messages)
//   --full             paper-sized run (40+ seeds, full 750 KB messages)
//   --seeds N          override the seed count for randomized routings
//   --msg-scale X      scale all message sizes by X (default depends on mode)
//   --threads N        worker threads for engine-backed sweeps (default:
//                      hardware concurrency; results are thread-independent)
//   --csv              machine-readable output
// Default (no flag) is a middle ground that completes on one core in a few
// minutes across all benches.
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

namespace benchutil {

struct Options {
  std::uint32_t seeds = 10;
  double msgScale = 0.125;
  std::uint32_t threads = 0;  ///< 0 = hardware concurrency.
  bool csv = false;

  static Options parse(int argc, char** argv) {
    Options opt;
    bool seedsSet = false;
    bool scaleSet = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        if (!seedsSet) opt.seeds = 3;
        if (!scaleSet) opt.msgScale = 0.03125;
      } else if (arg == "--full") {
        if (!seedsSet) opt.seeds = 40;
        if (!scaleSet) opt.msgScale = 1.0;
      } else if (arg == "--seeds" && i + 1 < argc) {
        opt.seeds = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        seedsSet = true;
      } else if (arg == "--msg-scale" && i + 1 < argc) {
        opt.msgScale = std::stod(argv[++i]);
        scaleSet = true;
      } else if (arg == "--threads" && i + 1 < argc) {
        opt.threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick | --full | --seeds N | --msg-scale X | "
                     "--threads N | --csv\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag '" << arg << "' (run --help for the flag list)\n";
        std::exit(2);
      }
    }
    return opt;
  }
};

}  // namespace benchutil
