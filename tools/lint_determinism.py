#!/usr/bin/env python3
"""Project-specific determinism linter.

Usage: lint_determinism.py [--root DIR]
       lint_determinism.py --self-check

The repo's reproducibility contract — byte-identical campaign CSVs and
manifests for any --threads value, any repeat, any platform — rests on
invariants no off-the-shelf tool knows about.  This linter enforces them
statically (regex/graph level, comments and string bodies stripped before
matching), as a failing CI gate:

  rng-source           The only randomness is xgft/rng.hpp's SplitMix64
                       derivations.  `rand()`, `std::random_device`,
                       `std::mt19937` & friends, or an `xgft::Rng` seeded
                       from a clock are forbidden outside that module:
                       platform-dependent or time-seeded bits would break
                       cross-platform reproduction silently.
  unordered-iteration  Files that write CSV/JSON/manifest artifacts must
                       not iterate over `std::unordered_map`/`_set`:
                       iteration order is implementation-defined, so a
                       libstdc++/libc++ difference (or a hash-seed change)
                       would reorder output bytes.  Membership tests are
                       fine; only iteration is flagged.
  float-format         Floating-point values reach output bytes only via
                       the std::to_chars helpers (fixed6, formatShortest,
                       formatJsonDouble, microsFixed3): `operator<<` on a
                       double honours stream state and produces different
                       shortest-form digits across standard libraries.
  error-shape          Name-lookup failures use the uniform registry
                       shape: `unknown <kind> '<name>' (registered: ...)`
                       (or another parenthesized hint).  A bare
                       "unknown flag: x" denies the user the list of what
                       would have been accepted.
  include-cycle        No `#include` cycles among src/ headers — a cycle
                       makes initialization order (and who-sees-what under
                       XGFT_THREAD_SAFETY) toolchain-dependent, and breaks
                       the standalone-header check (tools/check_headers.sh).

Suppressions: append `// NOLINT(determinism-<rule>) -- <reason>` to the
offending line (or the line above).  The reason is mandatory; a bare
NOLINT is itself a finding.  Policy in DESIGN.md §11.

Exit codes: 0 clean, 1 findings, 2 usage/environment error (one line on
stderr, no traceback — same contract as bench_diff.py, checked by
`--self-check`).
"""

import os
import re
import sys

# --- configuration -----------------------------------------------------------

# Directories scanned relative to the repo root.  tests/ is included for
# rng-source (a seeded test must stay seeded) but exempt from the output
# rules: test expectation strings legitimately mention anything.
CODE_DIRS = ("src", "bench", "examples", "tools")
TEST_DIRS = ("tests",)
CPP_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

# The one module allowed to define randomness primitives.
RNG_MODULE = "src/xgft/rng.hpp"

# Linter fixtures deliberately violate the rules.
FIXTURE_DIR = "tests/tools/fixtures"

# A file is an "output path" when it renders campaign artifacts (CSV rows,
# manifests, Chrome traces, time-series) whose bytes are compared across
# runs.  Matching is by content marker, not by a hand-kept file list, so a
# new exporter is covered the day it is born.
OUTPUT_MARKERS = (
    "writeCsv", "toCsv", "writeManifest", "writeChromeTrace",
    "writeTimeSeriesCsv", "ChromeTraceWriter", "ofstream",
)

# Formatting helpers that render floats deterministically (std::to_chars
# under the hood).  `<<` on their result is string streaming, not float
# streaming.
FLOAT_HELPERS = (
    "fixed6", "formatShortest", "formatFixed", "formatJsonDouble",
    "microsFixed3", "formatSci", "to_chars",
)

RULES = (
    "rng-source", "unordered-iteration", "float-format", "error-shape",
    "include-cycle",
)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- source mangling ---------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comment bodies and string/char literal contents, preserving
    line structure, so token rules never fire on prose or data."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def strip_comments_only(text):
    """Blanks comments but leaves string literals intact — the include-graph
    scanner needs the `#include "path"` operand that the full stripper would
    blank away."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            out.append(c if c == "\n" else " ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string
            if c == "\\" and nxt:
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c in ('"', "\n"):
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


NOLINT_RE = re.compile(
    r"NOLINT\(determinism-([a-z-]+)\)(?:\s*--\s*(\S.*))?")


def suppressed(rule, raw_lines, lineno, findings, path):
    """True when line `lineno` (1-based) or the one above carries a NOLINT
    for `rule` with a reason.  A reasonless NOLINT is itself reported."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            m = NOLINT_RE.search(raw_lines[candidate - 1])
            if m and m.group(1) == rule:
                if not m.group(2):
                    findings.append(Finding(
                        rule, path, candidate,
                        "NOLINT without a reason (use `NOLINT(determinism-"
                        f"{rule}) -- <why this is safe>`)"))
                    return True  # Suppress the original; the bare NOLINT is
                    # the finding to fix.
                return True
    return False


# --- rule: rng-source --------------------------------------------------------

RNG_FORBIDDEN = re.compile(
    r"\b(random_device|mt19937(?:_64)?|default_random_engine|minstd_rand0?"
    r"|ranlux\d+(?:_base)?|knuth_b|random_shuffle)\b"
    r"|\b(s?rand)\s*\(")
RNG_TIME_SEED = re.compile(  # `Rng name(args)` or `Rng(args)` temporary.
    r"\bRng\s*\w*\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")
TIME_SOURCE = re.compile(r"\b(time\s*\(|::now\s*\(|clock\s*\()")


def check_rng_source(path, raw_lines, stripped_lines, findings):
    if path.replace(os.sep, "/").endswith(RNG_MODULE.rsplit("/", 1)[-1]) \
            and path.replace(os.sep, "/").endswith(RNG_MODULE):
        return
    for lineno, line in enumerate(stripped_lines, 1):
        m = RNG_FORBIDDEN.search(line)
        if m:
            token = m.group(1) or m.group(2)
            if not suppressed("rng-source", raw_lines, lineno, findings, path):
                findings.append(Finding(
                    "rng-source", path, lineno,
                    f"forbidden randomness source `{token}` — derive bits "
                    "from xgft/rng.hpp (hashMix/deriveSeed) instead"))
        m = RNG_TIME_SEED.search(line)
        if m and TIME_SOURCE.search(m.group(1)):
            if not suppressed("rng-source", raw_lines, lineno, findings, path):
                findings.append(Finding(
                    "rng-source", path, lineno,
                    "xgft::Rng seeded from a clock — seeds must come from "
                    "the spec (deriveSeed) so runs reproduce"))


# --- rule: unordered-iteration ----------------------------------------------

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*&?\s*"
    r"(\w+)\s*[;({=]")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")
LAST_IDENT = re.compile(r"(\w+)\s*$")


def is_output_path_file(raw_text):
    return any(marker in raw_text for marker in OUTPUT_MARKERS)


def check_unordered_iteration(path, raw_lines, stripped_lines, findings):
    text = "\n".join(stripped_lines)
    names = set(UNORDERED_DECL.findall(text))
    if not names:
        return
    # begin() only: iteration always needs a begin, while a bare end() is
    # the safe `find(k) != end()` membership idiom.
    begin_re = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in names) +
        r")\s*\.\s*c?r?begin\s*\(")
    for lineno, line in enumerate(stripped_lines, 1):
        hit = None
        m = RANGE_FOR.search(line)
        if m:
            ident = LAST_IDENT.search(m.group(1).strip())
            if ident and ident.group(1) in names:
                hit = ident.group(1)
        if hit is None:
            m = begin_re.search(line)
            if m:
                hit = m.group(1)
        if hit is not None:
            if not suppressed("unordered-iteration", raw_lines, lineno,
                              findings, path):
                findings.append(Finding(
                    "unordered-iteration", path, lineno,
                    f"iteration over unordered container `{hit}` in an "
                    "output-writing file — order is implementation-defined; "
                    "copy keys into a sorted vector (or use std::map)"))


# --- rule: float-format ------------------------------------------------------

DOUBLE_DECL = re.compile(
    r"\b(?:double|float)\s+(\w+)\s*(?:[;,=)\[]|\s*=)")
STREAM_OPERAND = re.compile(r"<<\s*([A-Za-z_][\w:]*(?:\s*\(|"
                            r"(?:\s*(?:\.|->)\s*\w+|\[\w+\])*))")
FLOAT_LITERAL_STREAM = re.compile(r"<<\s*[0-9]+\.[0-9]")
MEMBER_CHAIN = re.compile(r"([A-Za-z_]\w*(?:(?:\.|->)\w+|\[\w+\])*)")


def harvest_double_names(file_texts):
    """Identifier names declared with double/float type in the given texts
    — a conservative over-approximation used to type `<<` operands at
    regex level.  Callers pass a file's include closure, not the whole
    tree: the same member name can be double in one struct and integral in
    another (latencyP99Ns is TimeNs in JobResult, a mean double in
    analysis::DegradationCell), and only the structs a file can actually
    see should type its operands."""
    names = set()
    for text in file_texts:
        names.update(DOUBLE_DECL.findall(text))
    return names


def include_closure(root, path, raw_text, cache):
    """Project headers transitively included by `path` (relative include
    paths resolved against src/, the project's single include root)."""
    key = path
    if key in cache:
        return cache[key]
    cache[key] = set()  # Break cycles defensively; rule 5 reports them.
    closure = set()
    src = os.path.join(root, "src")
    for inc in INCLUDE_RE.findall(strip_comments_only(raw_text)):
        hdr = os.path.join(src, inc)
        if not os.path.exists(hdr):
            continue
        if hdr in closure:
            continue
        closure.add(hdr)
        with open(hdr, encoding="utf-8", errors="replace") as f:
            closure |= include_closure(root, hdr, f.read(), cache)
    cache[key] = closure
    return closure


def check_float_format(path, raw_lines, stripped_lines, findings,
                       double_names):
    helpers = tuple(h + "(" for h in FLOAT_HELPERS)
    for lineno, line in enumerate(stripped_lines, 1):
        if "<<" not in line:
            continue
        if FLOAT_LITERAL_STREAM.search(line):
            if not suppressed("float-format", raw_lines, lineno, findings,
                              path):
                findings.append(Finding(
                    "float-format", path, lineno,
                    "float literal streamed with `<<` in an output-writing "
                    "file — render via the to_chars helpers (fixed6 / "
                    "formatShortest / formatJsonDouble)"))
            continue
        for m in STREAM_OPERAND.finditer(line):
            operand = m.group(1).strip()
            flat = operand.replace(" ", "")
            if any(flat.startswith(h) for h in helpers) or \
                    any("::" + h in flat for h in helpers):
                continue
            if flat.endswith("("):  # some other call — not a raw member
                continue
            if "::" in flat:  # std::fixed & friends, enum values, statics
                continue
            chain = MEMBER_CHAIN.match(flat)
            if not chain:
                continue
            last = re.split(r"\.|->|\[", chain.group(1).replace("]", ""))[-1]
            if last in double_names:
                if not suppressed("float-format", raw_lines, lineno,
                                  findings, path):
                    findings.append(Finding(
                        "float-format", path, lineno,
                        f"double-typed `{operand}` streamed with `<<` in an "
                        "output-writing file — use fixed6/formatShortest/"
                        "formatJsonDouble (std::to_chars) instead"))
                break


# --- rule: error-shape -------------------------------------------------------

STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')
SHAPE_PREFIX = re.compile(r"^unknown [a-z][a-z -]* '$")
SHAPE_BARE = re.compile(r"^unknown $")
SHAPE_WRONG = re.compile(r"^unknown [a-z][a-z -]*[:=] ?$")
HINT_MARKERS = ("(registered:", "(known", "(see ", "(run ", "(degradable:",
                "(available")


def check_error_shape(path, raw_lines, stripped_lines, findings):
    del stripped_lines
    for lineno, line in enumerate(raw_lines, 1):
        for lit in STRING_LITERAL.findall(line):
            if SHAPE_WRONG.match(lit):
                if not suppressed("error-shape", raw_lines, lineno, findings,
                                  path):
                    findings.append(Finding(
                        "error-shape", path, lineno,
                        f'lookup error "{lit}..." — use the uniform shape '
                        "`unknown <kind> '<name>' (<hint>)` so every bad "
                        "name gets quoted and the accepted values listed"))
                continue
            if SHAPE_PREFIX.match(lit) or SHAPE_BARE.match(lit):
                # The statement (this line onward until `;`) must carry a
                # parenthesized hint list.
                statement = []
                for look in range(lineno - 1, min(lineno + 7,
                                                  len(raw_lines))):
                    statement.append(raw_lines[look])
                    if ";" in raw_lines[look]:
                        break
                joined = "\n".join(statement)
                if not any(h in joined for h in HINT_MARKERS):
                    if not suppressed("error-shape", raw_lines, lineno,
                                      findings, path):
                        findings.append(Finding(
                            "error-shape", path, lineno,
                            f'lookup error "{lit}..." lacks a hint list — '
                            "append `(registered: ...)`/`(known ...)`/"
                            "`(see --help)` naming what would be accepted"))


# --- rule: include-cycle -----------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def check_include_cycles(root, findings):
    """DFS over the project-header include graph under src/."""
    src = os.path.join(root, "src")
    graph = {}
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in filenames:
            if not fn.endswith((".hpp", ".h")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, src).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                text = strip_comments_only(f.read())
            deps = []
            for inc in INCLUDE_RE.findall(text):
                if os.path.exists(os.path.join(src, inc)):
                    deps.append(inc)
            graph[rel] = deps

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack_trace = []
    reported = set()

    def dfs(node):
        color[node] = GRAY
        stack_trace.append(node)
        for dep in graph.get(node, ()):
            if dep not in graph:
                continue
            if color[dep] == GRAY:
                cycle = stack_trace[stack_trace.index(dep):] + [dep]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    findings.append(Finding(
                        "include-cycle", os.path.join("src", dep), 1,
                        "header include cycle: " + " -> ".join(cycle)))
            elif color[dep] == WHITE:
                dfs(dep)
        stack_trace.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)


# --- driver ------------------------------------------------------------------

def iter_files(root, dirs):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if rel_dir.startswith(FIXTURE_DIR):
                continue
            for fn in sorted(filenames):
                if fn.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def lint_tree(root):
    findings = []
    texts = {}
    for path in list(iter_files(root, CODE_DIRS)) + \
            list(iter_files(root, TEST_DIRS)):
        with open(path, encoding="utf-8", errors="replace") as f:
            texts[path] = f.read()

    closure_cache = {}
    for path, raw in sorted(texts.items()):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()
        in_tests = rel.startswith("tests/")

        if rel != RNG_MODULE:
            check_rng_source(rel, raw_lines, stripped_lines, findings)
        if not in_tests:
            check_error_shape(rel, raw_lines, stripped_lines, findings)
            if is_output_path_file(raw):
                check_unordered_iteration(rel, raw_lines, stripped_lines,
                                          findings)
                # Type `<<` operands against what this file can see: its
                # own declarations plus its project-header closure.
                closure_texts = [strip_comments_and_strings(raw)]
                for hdr in include_closure(root, path, raw, closure_cache):
                    with open(hdr, encoding="utf-8",
                              errors="replace") as f:
                        closure_texts.append(
                            strip_comments_and_strings(f.read()))
                check_float_format(rel, raw_lines, stripped_lines, findings,
                                   harvest_double_names(closure_texts))

    check_include_cycles(root, findings)
    return findings


def main(argv):
    if "--self-check" in argv:
        return self_check()
    root = "."
    args = [a for a in argv if a != "--self-check"]
    it = iter(args)
    for a in it:
        if a == "--root":
            try:
                root = next(it)
            except StopIteration:
                sys.stderr.write("lint_determinism: --root needs a value\n")
                return 2
        elif a.startswith("--root="):
            root = a.split("=", 1)[1]
        else:
            sys.stderr.write(f"lint_determinism: unknown argument '{a}' "
                             "(see --help in the module docstring)\n")
            return 2
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write(f"lint_determinism: '{root}' has no src/ directory "
                         "— pass the repo root via --root\n")
        return 2
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)")
        return 1
    print("lint_determinism: clean")
    return 0


# --- self-check --------------------------------------------------------------

def run_rule_on(content, rule, path="src/fake/file.cpp",
                double_names=frozenset()):
    raw_lines = content.splitlines()
    stripped = strip_comments_and_strings(content).splitlines()
    findings = []
    if rule == "rng-source":
        check_rng_source(path, raw_lines, stripped, findings)
    elif rule == "unordered-iteration":
        check_unordered_iteration(path, raw_lines, stripped, findings)
    elif rule == "float-format":
        check_float_format(path, raw_lines, stripped, findings, double_names)
    elif rule == "error-shape":
        check_error_shape(path, raw_lines, stripped, findings)
    return findings


def self_check():
    """Fixture-free checks of every rule (positive and negative) plus the
    CLI error contract.  Exit 0 on success, 1 with a diagnostic on any
    failed expectation."""
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # rng-source
    expect(run_rule_on("std::mt19937 gen(42);", "rng-source"),
           "rng-source misses mt19937")
    expect(run_rule_on("int x = rand();", "rng-source"),
           "rng-source misses rand()")
    expect(run_rule_on("xgft::Rng rng(time(nullptr));", "rng-source"),
           "rng-source misses time-seeded Rng")
    expect(not run_rule_on("xgft::Rng rng(deriveSeed(seed, \"x\"));",
                           "rng-source"),
           "rng-source false positive on deriveSeed")
    expect(not run_rule_on("// std::mt19937 would not reproduce\n",
                           "rng-source"),
           "rng-source fires inside comments")
    expect(not run_rule_on("int operand = 3; f(operand);", "rng-source"),
           "rng-source substring-matches 'rand' inside identifiers")

    # NOLINT with reason suppresses; without reason is itself a finding.
    sup = run_rule_on("int x = rand();  // NOLINT(determinism-rng-source)"
                      " -- fixture exercising the rule\n", "rng-source")
    expect(not sup, "NOLINT with reason does not suppress")
    bare = run_rule_on("int x = rand();  // NOLINT(determinism-rng-source)\n",
                       "rng-source")
    expect(len(bare) == 1 and "reason" in bare[0].message,
           "bare NOLINT not reported")

    # unordered-iteration
    bad_iter = ("std::unordered_map<int, int> m;\n"
                "for (const auto& [k, v] : m) use(k, v);\n")
    expect(run_rule_on(bad_iter, "unordered-iteration"),
           "unordered-iteration misses range-for")
    bad_begin = ("std::unordered_set<int> s;\n"
                 "auto it = s.begin();\n")
    expect(run_rule_on(bad_begin, "unordered-iteration"),
           "unordered-iteration misses .begin()")
    expect(not run_rule_on("std::unordered_set<int> s;\n"
                           "if (s.find(3) != s.end()) {}\n",
                           "unordered-iteration"),
           "unordered-iteration flags the find/end membership idiom")
    expect(not run_rule_on("std::map<int, int> m;\n"
                           "for (const auto& [k, v] : m) use(k, v);\n",
                           "unordered-iteration"),
           "unordered-iteration flags ordered std::map")

    # float-format
    expect(run_rule_on("os << job.slowdown;\n", "float-format",
                       double_names={"slowdown"}),
           "float-format misses raw double member")
    expect(not run_rule_on("os << fixed6(job.slowdown);\n", "float-format",
                           double_names={"slowdown"}),
           "float-format flags fixed6-wrapped double")
    expect(run_rule_on("os << 0.5;\n", "float-format"),
           "float-format misses float literal")
    expect(not run_rule_on("os << job.makespanNs;\n", "float-format",
                           double_names={"slowdown"}),
           "float-format flags integer member")

    # error-shape
    expect(run_rule_on('throw std::invalid_argument("unknown flag: " + a);\n',
                       "error-shape"),
           "error-shape misses colon form")
    expect(run_rule_on(
        "throw std::invalid_argument(\"unknown pattern '\" + n + \"'\");\n",
        "error-shape"),
        "error-shape misses missing hint list")
    expect(not run_rule_on(
        "throw std::invalid_argument(\"unknown pattern '\" + n +\n"
        "    \"' (registered: \" + list + \")\");\n",
        "error-shape"),
        "error-shape flags the uniform shape")
    expect(not run_rule_on('result.error = "unknown error";\n',
                           "error-shape"),
           "error-shape flags the generic fallback message")

    # include-cycle (synthetic tree)
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "src")
        os.makedirs(os.path.join(src, "a"))
        with open(os.path.join(src, "a", "x.hpp"), "w") as f:
            f.write('#include "a/y.hpp"\n')
        with open(os.path.join(src, "a", "y.hpp"), "w") as f:
            f.write('#include "a/x.hpp"\n')
        cyc = []
        check_include_cycles(tmp, cyc)
        expect(cyc and cyc[0].rule == "include-cycle",
               "include-cycle misses a 2-cycle")
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "src")
        os.makedirs(os.path.join(src, "a"))
        with open(os.path.join(src, "a", "x.hpp"), "w") as f:
            f.write('#include "a/y.hpp"\n')
        with open(os.path.join(src, "a", "y.hpp"), "w") as f:
            f.write("#pragma once\n")
        clean = []
        check_include_cycles(tmp, clean)
        expect(not clean, "include-cycle false positive on a DAG")

    # CLI error contract: bad root -> one stderr line, exit 2.
    import subprocess
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--root",
         "/nonexistent-root"],
        capture_output=True, text=True)
    expect(proc.returncode == 2, "bad --root should exit 2")
    expect(proc.stderr.count("\n") == 1 and "src/" in proc.stderr,
           "bad --root should print one diagnostic line")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--bogus-flag"],
        capture_output=True, text=True)
    expect(proc.returncode == 2, "unknown flag should exit 2")

    if failures:
        for f in failures:
            print(f"self-check FAILED: {f}")
        return 1
    print("lint_determinism --self-check: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
