#!/usr/bin/env python3
"""Diff a fresh micro_sim run against the committed BENCH_sim.json baseline.

Usage: bench_diff.py [--fail-regressed] BENCH_sim.json BENCH_sim_raw.json
       [>> $GITHUB_STEP_SUMMARY]

The committed baseline stores curated `after_*` numbers per benchmark
(items/s for event-counting benches, wall-clock ms/us otherwise).  The raw
file is Google Benchmark's --benchmark_out JSON.  The script renders a
markdown comparison table to stdout and emits a GitHub `::warning::`
annotation for every benchmark that regressed by more than REGRESSION_PCT.

A baseline entry may additionally carry `after_<counter>_bytes` memory
fields (e.g. `after_compressed_bytes`); each is compared against the
same-named gbench counter of the raw run as its own lower-is-better row.
Memory counters are deterministic, but they share the one regression
threshold: a >10% footprint growth flags exactly like a slowdown.

Benchmarks present in only one of the two files are reported explicitly:
baseline-only ones as "gone" (deleted or renamed — update the baseline),
raw-only ones as "new" (not yet curated into the baseline).  Neither state
is an error and neither regresses.

By default the script always exits 0: the job summary is the report, CI
does not gate on noisy single-run numbers.  With --fail-regressed it exits
1 when any benchmark regressed beyond the threshold — the opt-in gate the
telemetry-overhead CI step uses.

A missing or malformed input file is an environment problem, not a perf
result: the script prints one line to stderr and exits 2 (no traceback),
so the CI step fails with a readable message.  `bench_diff.py --self-check`
runs the built-in pytest-style checks of exactly that contract.
"""

import json
import sys

REGRESSION_PCT = 10.0


def load_json(path, role):
    """Loads a JSON input or fails with a one-line diagnostic (exit 2)."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.stderr.write(
            f"bench_diff: cannot read {role} file '{path}': {e.strerror}\n")
        raise SystemExit(2)
    except json.JSONDecodeError as e:
        sys.stderr.write(
            f"bench_diff: {role} file '{path}' is not valid JSON: {e}\n")
        raise SystemExit(2)


def raw_by_name(raw):
    out = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def to_unit(value_ns_like, time_unit, target):
    """Google Benchmark real_time (in `time_unit`) -> target unit."""
    scale_to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[time_unit]
    ns = value_ns_like * scale_to_ns
    return ns / {"us": 1e3, "ms": 1e6}[target]


def fmt_bytes(value):
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.2f} KiB"
    return f"{value:.0f} B"


def fresh_cell(fresh):
    """Best-effort rendering of a raw result with no baseline to compare."""
    if "items_per_second" in fresh:
        return f"{float(fresh['items_per_second']) / 1e6:.2f} M/s"
    ms = to_unit(float(fresh["real_time"]), fresh.get("time_unit", "ns"),
                 "ms")
    return f"{ms:.2f} ms" if ms >= 1.0 else f"{ms * 1e3:.2f} us"


def self_check():
    """Pytest-style checks of the error contract: one stderr line, exit 2,
    no traceback, for each way an input file can be bad."""
    import os
    import subprocess
    import tempfile

    script = os.path.abspath(__file__)
    checks = []

    def check(name, argv):
        proc = subprocess.run([sys.executable, script] + argv,
                              capture_output=True, text=True)
        ok = (proc.returncode == 2
              and proc.stderr.startswith("bench_diff: ")
              and len(proc.stderr.splitlines()) == 1
              and "Traceback" not in proc.stderr)
        checks.append((name, ok, proc.returncode, proc.stderr.strip()))

    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "good.json")
        with open(good, "w") as f:
            json.dump({"benchmarks": []}, f)
        bad = os.path.join(tmp, "bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        missing = os.path.join(tmp, "missing.json")
        check("missing baseline", [missing, good])
        check("missing raw", [good, missing])
        check("malformed baseline", [bad, good])
        check("malformed raw", [good, bad])
        unreadable = os.path.join(tmp, "unreadable.json")
        with open(unreadable, "w") as f:
            f.write("{}")
        os.chmod(unreadable, 0)
        if not os.access(unreadable, os.R_OK):  # Skipped when run as root.
            check("unreadable baseline", [unreadable, good])
        # And the happy path still exits 0 with the report on stdout.
        proc = subprocess.run([sys.executable, script, good, good],
                              capture_output=True, text=True)
        checks.append(("two empty inputs pass", proc.returncode == 0
                       and "micro_sim" in proc.stdout, proc.returncode,
                       proc.stderr.strip()))
        # Memory fields: an unchanged counter passes, a grown one gates.
        mem_base = os.path.join(tmp, "mem_base.json")
        with open(mem_base, "w") as f:
            json.dump({"benchmarks": [{"name": "BM_Mem", "after_ms": 1.0,
                                       "after_compressed_bytes": 1000}]}, f)
        mem_raw = os.path.join(tmp, "mem_raw.json")
        with open(mem_raw, "w") as f:
            json.dump({"benchmarks": [{"name": "BM_Mem", "real_time": 1.0,
                                       "time_unit": "ms",
                                       "compressed_bytes": 1000.0}]}, f)
        proc = subprocess.run([sys.executable, script, "--fail-regressed",
                               mem_base, mem_raw],
                              capture_output=True, text=True)
        checks.append(("unchanged memory counter passes",
                       proc.returncode == 0
                       and "BM_Mem [compressed_bytes]" in proc.stdout,
                       proc.returncode, proc.stderr.strip()))
        with open(mem_raw, "w") as f:
            json.dump({"benchmarks": [{"name": "BM_Mem", "real_time": 1.0,
                                       "time_unit": "ms",
                                       "compressed_bytes": 2000.0}]}, f)
        proc = subprocess.run([sys.executable, script, "--fail-regressed",
                               mem_base, mem_raw],
                              capture_output=True, text=True)
        checks.append(("grown memory counter gates", proc.returncode == 1
                       and "compressed_bytes grew" in proc.stderr,
                       proc.returncode, proc.stderr.strip()))

    failed = 0
    for name, ok, code, err in checks:
        status = "ok" if ok else "FAILED"
        print(f"self-check: {name} ... {status}"
              + ("" if ok else f" (exit={code}, stderr={err!r})"))
        failed += 0 if ok else 1
    print(f"self-check: {len(checks) - failed}/{len(checks)} passed")
    return 1 if failed else 0


def main():
    args = sys.argv[1:]
    if args == ["--self-check"]:
        return self_check()
    fail_regressed = "--fail-regressed" in args
    args = [a for a in args if a != "--fail-regressed"]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    baseline = load_json(args[0], "baseline")
    raw = raw_by_name(load_json(args[1], "raw"))

    rows = []
    warnings = []
    gone = []
    baseline_names = set()
    for bench in baseline.get("benchmarks", []):
        name = bench["name"]
        baseline_names.add(name)
        fresh = raw.get(name)
        if fresh is None:
            gone.append(name)
            continue
        if "after_items_per_second" in bench:
            base = float(bench["after_items_per_second"])
            new = float(fresh.get("items_per_second", 0.0))
            # Higher is better.
            delta_pct = (new - base) / base * 100.0
            rows.append((name, f"{base / 1e6:.2f} M/s", f"{new / 1e6:.2f} M/s",
                         delta_pct))
            if delta_pct < -REGRESSION_PCT:
                warnings.append(
                    f"{name}: {abs(delta_pct):.1f}% slower than the "
                    f"committed BENCH_sim.json baseline")
        elif "after_ms" in bench or "after_us" in bench:
            unit = "ms" if "after_ms" in bench else "us"
            base = float(bench[f"after_{unit}"])
            new = to_unit(float(fresh["real_time"]),
                          fresh.get("time_unit", "ns"), unit)
            # Lower is better; report slowdown as a negative delta.
            delta_pct = (base - new) / base * 100.0
            rows.append((name, f"{base:.2f} {unit}", f"{new:.2f} {unit}",
                         delta_pct))
            if delta_pct < -REGRESSION_PCT:
                warnings.append(
                    f"{name}: {abs(delta_pct):.1f}% slower than the "
                    f"committed BENCH_sim.json baseline")
        # Memory fields: after_<counter>_bytes vs the raw run's same-named
        # gbench counter (a top-level key in the benchmark dict).
        for key in sorted(bench):
            if not (key.startswith("after_") and key.endswith("_bytes")):
                continue
            counter = key[len("after_"):]
            base = float(bench[key])
            new = float(fresh.get(counter, 0.0))
            # Lower is better, like wall-clock.
            delta_pct = (base - new) / base * 100.0
            rows.append((f"{name} [{counter}]", fmt_bytes(base),
                         fmt_bytes(new), delta_pct))
            if delta_pct < -REGRESSION_PCT:
                warnings.append(
                    f"{name}: {counter} grew {abs(delta_pct):.1f}% over the "
                    f"committed BENCH_sim.json baseline")
    new_benches = [name for name in raw if name not in baseline_names]

    print("## micro_sim vs committed BENCH_sim.json baseline\n")
    print(f"Regression threshold: {REGRESSION_PCT:.0f}% "
          "(single CI run; treat small deltas as noise).\n")
    print("| benchmark | baseline | this run | delta |")
    print("|---|---|---|---|")
    for name, base, new, delta in rows:
        flag = " ⚠️" if delta < -REGRESSION_PCT else ""
        print(f"| {name} | {base} | {new} | {delta:+.1f}%{flag} |")
    for name in new_benches:
        print(f"| {name} | *new* | {fresh_cell(raw[name])} | — |")
    for name in gone:
        print(f"| {name} | *gone* (not in this run) | — | — |")
    if new_benches:
        print(f"\n{len(new_benches)} new benchmark(s) not in the baseline "
              "yet — curate them into BENCH_sim.json when stable.")
    if gone:
        print(f"\n{len(gone)} baseline benchmark(s) gone from this run — "
              "deleted or renamed; update BENCH_sim.json.")
    if warnings:
        print(f"\n**{len(warnings)} benchmark(s) regressed > "
              f"{REGRESSION_PCT:.0f}%.**")
    else:
        print("\nNo regressions beyond the threshold.")

    # GitHub annotations surface in the job log and the PR checks UI.
    for w in warnings:
        sys.stderr.write(f"::warning title=bench regression::{w}\n")
    if fail_regressed and warnings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
