#!/usr/bin/env bash
# run_tidy.sh — the curated clang-tidy gate (.clang-tidy at the repo root).
#
#   tools/run_tidy.sh [build-dir]
#
# Runs clang-tidy over every translation unit in the compilation database
# (any CMake configure exports compile_commands.json) and fails on the first
# batch of findings; WarningsAsErrors in .clang-tidy makes every finding an
# error.  Exit codes follow the tools/ contract: 0 clean, 1 findings,
# 2 environment error (one stderr line, no stack trace).
set -u

die() { echo "run_tidy: $*" >&2; exit 2; }

cd "$(dirname "$0")/.." || die "cannot cd to the repo root"
BUILD_DIR="${1:-build}"
DB="$BUILD_DIR/compile_commands.json"
[ -f "$DB" ] || die "no $DB (configure first: cmake -B $BUILD_DIR -S .)"

TIDY=""
for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
            clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
            clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
done
[ -n "$TIDY" ] || die "clang-tidy not found on PATH"

# Lint exactly what the build compiles: the database already excludes
# skipped benches (missing Google Benchmark) and anything outside the
# project, so no hand-kept file list can drift out of sync.
mapfile -t FILES < <(python3 - "$DB" <<'EOF'
import json
import os
import sys

root = os.getcwd()
seen = []
for entry in json.load(open(sys.argv[1])):
    path = os.path.normpath(
        os.path.join(entry.get("directory", root), entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.split(os.sep)[0] in ("src", "bench", "examples", "tests"):
        seen.append(rel)
for rel in sorted(set(seen)):
    print(rel)
EOF
)
[ "${#FILES[@]}" -gt 0 ] || die "compilation database lists no project sources"

echo "run_tidy: $TIDY over ${#FILES[@]} translation units"
status=0
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 8 "$TIDY" --quiet -p "$BUILD_DIR" || status=1

if [ "$status" -ne 0 ]; then
  echo "run_tidy: findings above — fix them or NOLINT(<check>) -- <reason>" >&2
  exit 1
fi
echo "run_tidy: clean"
