#!/usr/bin/env bash
# check_headers.sh — every project header must compile standalone, so any
# file can include it first without depending on accidental include order.
#
#   tools/check_headers.sh [compiler]
#
# Compiles each src/ and bench/ header as its own translation unit with
# -fsyntax-only.  Exit codes follow the tools/ contract: 0 clean, 1 findings,
# 2 environment error (one stderr line, no stack trace).
set -u

die() { echo "check_headers: $*" >&2; exit 2; }

cd "$(dirname "$0")/.." || die "cannot cd to the repo root"
CXX="${1:-${CXX:-c++}}"
command -v "$CXX" >/dev/null 2>&1 || die "compiler '$CXX' not found on PATH"

mapfile -t HEADERS < <(find src bench -name '*.hpp' | sort)
[ "${#HEADERS[@]}" -gt 0 ] || die "no headers under src/ or bench/"

bad=0
for h in "${HEADERS[@]}"; do
  # Compile a one-line wrapper rather than the header itself: a .hpp as the
  # main file trips -Wpragma-once-outside-header / "#pragma once in main
  # file" on both GCC and Clang.
  if ! echo "#include \"$PWD/$h\"" | "$CXX" -std=c++20 -fsyntax-only \
       -Wall -Wextra -Werror -Isrc -Ibench -x c++ -; then
    echo "check_headers: $h is not self-contained" >&2
    bad=$((bad + 1))
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_headers: $bad header(s) failed" >&2
  exit 1
fi
echo "check_headers: ${#HEADERS[@]} headers self-contained"
